//! The shared retry/backoff policy: bounded exponential backoff with
//! deterministic seeded jitter and a cumulative-delay deadline.
//!
//! Replaces the bespoke retry loops that `CheckpointLog` and `FsModelSource`
//! each used to carry. The whole delay plan is a pure function of the policy
//! ([`RetryPolicy::delays_us`]), so tests can assert the exact backoff
//! sequence without clocks: the *deadline* bounds the **sum of planned
//! sleeps**, not wall time, keeping the policy free of wall-clock reads
//! (FW005) and bit-reproducible across machines.

use crate::rng::{mix, ChaCha};

/// Salt mixed into `jitter_seed` so retry jitter and failpoint streams
/// derived from the same seed never share a keystream.
const JITTER_SALT: u64 = 0x7265_7472_795f_6a69; // "retry_ji"

/// A bounded retry policy: up to `max_attempts` tries with exponential
/// backoff between them.
///
/// `delay_k = min(base_delay_us << k, max_delay_us) * jitter_k` for the
/// sleep after attempt `k+1`, with `jitter_k` drawn uniformly from
/// `[0.5, 1.0)` out of a ChaCha stream keyed by `jitter_seed` — so two
/// policies with the same fields plan byte-identical delays. A non-zero
/// `deadline_us` caps the *cumulative* planned delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`0` behaves as `1`).
    pub max_attempts: u32,
    /// First backoff in microseconds; `0` disables sleeping entirely.
    pub base_delay_us: u64,
    /// Per-sleep cap in microseconds (applied before jitter).
    pub max_delay_us: u64,
    /// Cap on the cumulative planned delay; `0` means uncapped.
    pub deadline_us: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// `n` attempts with no backoff between them.
    pub const fn attempts(n: u32) -> Self {
        Self {
            max_attempts: n,
            base_delay_us: 0,
            max_delay_us: 0,
            deadline_us: 0,
            jitter_seed: 0,
        }
    }

    /// `n` attempts with exponential backoff from `base_us` capped at
    /// `max_us` per sleep.
    pub const fn backoff(n: u32, base_us: u64, max_us: u64) -> Self {
        Self {
            max_attempts: n,
            base_delay_us: base_us,
            max_delay_us: max_us,
            deadline_us: 0,
            jitter_seed: 0,
        }
    }

    /// Caps the cumulative planned delay at `deadline_us`.
    pub const fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Keys the jitter stream (e.g. with a checkpoint generation) so
    /// concurrent retriers decorrelate while each stays deterministic.
    pub const fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The exact planned sleeps, in microseconds, between consecutive
    /// attempts (length `max_attempts - 1`). Pure: same policy ⇒ same plan.
    pub fn delays_us(&self) -> Vec<u64> {
        let n = self.max_attempts.saturating_sub(1) as usize;
        let mut rng = ChaCha::from_seed(mix(self.jitter_seed, JITTER_SALT));
        let mut plan = Vec::with_capacity(n);
        let mut total = 0u64;
        for k in 0..n {
            let exponential = if k >= 63 {
                u64::MAX
            } else {
                self.base_delay_us.saturating_mul(1u64 << k)
            };
            let capped = exponential.min(self.max_delay_us);
            let jittered = if capped == 0 {
                0
            } else {
                let factor = 0.5 + rng.next_f64() * 0.5;
                ((capped as f64 * factor) as u64).max(1)
            };
            let delay = if self.deadline_us > 0 {
                jittered.min(self.deadline_us.saturating_sub(total))
            } else {
                jittered
            };
            total = total.saturating_add(delay);
            plan.push(delay);
        }
        plan
    }

    /// Runs `op` up to `max_attempts` times (1-based attempt index),
    /// sleeping the planned backoff between failures. `on_err` observes
    /// every failed attempt (for journaling); the last error is returned
    /// once the budget is exhausted.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, E>,
        mut on_err: impl FnMut(u32, &E),
    ) -> Result<T, E> {
        let attempts = self.max_attempts.max(1);
        let delays = self.delays_us();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(error) => {
                    on_err(attempt, &error);
                    if attempt >= attempts {
                        return Err(error);
                    }
                    let sleep_us = delays.get(attempt as usize - 1).copied().unwrap_or(0);
                    if sleep_us > 0 {
                        std::thread::sleep(std::time::Duration::from_micros(sleep_us));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempts_policy_plans_no_sleeps() {
        assert_eq!(RetryPolicy::attempts(3).delays_us(), vec![0, 0]);
        assert_eq!(RetryPolicy::attempts(1).delays_us(), Vec::<u64>::new());
        assert_eq!(RetryPolicy::attempts(0).delays_us(), Vec::<u64>::new());
    }

    #[test]
    fn backoff_grows_then_caps() {
        let plan = RetryPolicy::backoff(6, 100, 400).delays_us();
        assert_eq!(plan.len(), 5);
        // Jitter keeps each delay in [raw/2, raw); raw doubles until the cap.
        for (k, &d) in plan.iter().enumerate() {
            let raw = (100u64 << k).min(400);
            assert!(
                d >= raw / 2 && d < raw,
                "delay {d} outside [{}, {raw})",
                raw / 2
            );
        }
    }

    #[test]
    fn deadline_caps_cumulative_delay() {
        let plan = RetryPolicy::backoff(8, 1_000, 10_000)
            .with_deadline_us(2_500)
            .delays_us();
        assert!(plan.iter().sum::<u64>() <= 2_500);
    }

    #[test]
    fn same_seed_plans_identically_and_seeds_decorrelate() {
        let a = RetryPolicy::backoff(5, 100, 1_000).with_jitter_seed(9);
        let b = RetryPolicy::backoff(5, 100, 1_000).with_jitter_seed(9);
        assert_eq!(a.delays_us(), b.delays_us());
        let c = RetryPolicy::backoff(5, 100, 1_000).with_jitter_seed(10);
        assert_ne!(a.delays_us(), c.delays_us());
    }

    #[test]
    fn run_retries_then_succeeds() {
        let mut seen = Vec::new();
        let result: Result<u32, &str> = RetryPolicy::attempts(3).run(
            |attempt| {
                if attempt < 3 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
            |attempt, _| seen.push(attempt),
        );
        assert_eq!(result, Ok(3));
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn run_surfaces_last_error_after_budget() {
        let mut calls = 0u32;
        let result: Result<(), String> = RetryPolicy::attempts(3).run(
            |attempt| {
                calls += 1;
                Err(format!("boom {attempt}"))
            },
            |_, _| {},
        );
        assert_eq!(result, Err("boom 3".to_string()));
        assert_eq!(calls, 3);
    }

    #[test]
    fn zero_attempts_still_runs_once() {
        let result: Result<u32, &str> = RetryPolicy::attempts(0).run(|_| Ok(7), |_, _| {});
        assert_eq!(result, Ok(7));
    }
}
