//! The global failpoint registry, compiled only with the `enabled` feature.
//!
//! One process-wide armed [`ScheduleRunner`] drives every `failpoint!` call
//! site. The fast path is a single relaxed atomic load when nothing is
//! armed, so even chaos-enabled builds pay almost nothing outside a soak.
//!
//! `Delay` actions are returned to the call site (which sleeps via
//! [`FaultAction::delay`]) rather than slept here, so the registry mutex is
//! never held across an injected latency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::{FaultAction, FaultSchedule, InjectedFault, ScheduleRunner};

static ARMED: AtomicBool = AtomicBool::new(false);
static RUNNER: Mutex<Option<ScheduleRunner>> = Mutex::new(None);

fn runner() -> MutexGuard<'static, Option<ScheduleRunner>> {
    RUNNER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arms the registry with `schedule`, replacing any previous runner (its
/// log is discarded — call [`disarm`] first to keep it).
pub fn arm(schedule: FaultSchedule) {
    let mut guard = runner();
    *guard = Some(ScheduleRunner::new(schedule));
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms the registry and returns the injection log of the retired
/// runner (empty if none was armed).
pub fn disarm() -> Vec<InjectedFault> {
    let mut guard = runner();
    ARMED.store(false, Ordering::SeqCst);
    guard
        .take()
        .map(ScheduleRunner::into_log)
        .unwrap_or_default()
}

/// Evaluates the failpoint `point` against the armed schedule.
///
/// Returns `None` when nothing is armed or no rule fires. Call sites honor
/// the returned action (`Delay` is slept by the caller).
pub fn eval(point: &str) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    runner().as_mut()?.fire(point)
}

/// Like [`eval`], but matches `Key` triggers against `key` (e.g. a
/// checkpoint generation number).
pub fn eval_keyed(point: &str, key: u64) -> Option<FaultAction> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    runner().as_mut()?.fire_keyed(point, key)
}

/// A snapshot of every fault injected since the registry was last armed.
pub fn injection_log() -> Vec<InjectedFault> {
    runner()
        .as_ref()
        .map(|r| r.log().to_vec())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trigger;
    use std::sync::Mutex as StdMutex;

    // The registry is process-global; serialize the tests that arm it.
    static GATE: StdMutex<()> = StdMutex::new(());

    #[test]
    fn armed_schedule_drives_eval_and_disarm_returns_the_log() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let mut schedule = FaultSchedule::new(1);
        schedule.rule("reg/test/op", Trigger::Nth(vec![2]), FaultAction::Fail);
        arm(schedule);
        assert_eq!(eval("reg/test/op"), None);
        assert_eq!(eval("reg/test/op"), Some(FaultAction::Fail));
        assert_eq!(eval("reg/other/op"), None);
        assert_eq!(injection_log().len(), 1);
        let log = disarm();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].point, "reg/test/op");
        assert_eq!(eval("reg/test/op"), None, "disarmed registry is inert");
    }

    #[test]
    fn keyed_eval_matches_key_triggers() {
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let mut schedule = FaultSchedule::new(2);
        schedule.rule("reg/test/read", Trigger::Key(vec![9]), FaultAction::Vanish);
        arm(schedule);
        assert_eq!(eval_keyed("reg/test/read", 8), None);
        assert_eq!(eval_keyed("reg/test/read", 9), Some(FaultAction::Vanish));
        disarm();
    }
}
