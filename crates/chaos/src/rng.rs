//! Hand-rolled deterministic randomness for the fault engine: a ChaCha20
//! keystream generator plus splitmix64-style mixing for deriving independent
//! per-failpoint streams from one schedule seed.
//!
//! Nothing here is used for cryptography — ChaCha is chosen because its
//! output is platform-independent, splittable (one 64-bit key per stream),
//! and trivially reproducible from a printed seed, which is the whole point
//! of replayable chaos runs.

/// Finalizer of splitmix64: a strong 64→64 bit mixer.
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed with a salt into an independent derived seed.
///
/// Used to key one ChaCha stream per failpoint (`salt` = FNV-1a of the
/// point name) so that adding a rule to one point never perturbs the
/// probability draws of another.
pub fn mix(seed: u64, salt: u64) -> u64 {
    splitmix_finalize(seed.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(salt))
}

/// FNV-1a 64-bit hash of a byte string (same constants as the checkpoint
/// footer checksum in `fairwos-core`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A ChaCha20 keystream generator keyed from a 64-bit seed.
///
/// The 256-bit key is expanded from the seed with a splitmix64 sequence;
/// nonce is zero and the 64-bit block counter advances per block, so the
/// stream is a pure function of the seed.
#[derive(Clone, Debug)]
pub struct ChaCha {
    /// Input state for the next block (key/counter/nonce layout).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word to hand out from `block`; 16 forces a refill.
    idx: usize,
}

/// "expand 32-byte k" — the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha {
    /// Creates a generator whose whole stream is determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        let mut x = seed;
        for i in 0..4 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let word = splitmix_finalize(x);
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Words 12..13 are the 64-bit block counter, 14..15 the nonce (zero).
        Self {
            state,
            block: [0u32; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..10 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = working;
        self.idx = 0;
        // Advance the 64-bit block counter.
        let counter = (u64::from(self.state[13]) << 32) | u64::from(self.state[12]);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }

    /// Next 32 bits of keystream.
    pub fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }

    /// Next 64 bits of keystream.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha::from_seed(7);
        let mut b = ChaCha::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha::from_seed(1);
        let mut b = ChaCha::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "independent streams should not collide");
    }

    #[test]
    fn f64_draws_are_in_unit_interval() {
        let mut rng = ChaCha::from_seed(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "draw {x} outside [0,1)");
        }
    }

    #[test]
    fn mix_separates_salts() {
        assert_ne!(mix(5, fnv1a64(b"a/b")), mix(5, fnv1a64(b"a/c")));
    }
}
