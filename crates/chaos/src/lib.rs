//! **fairwos-chaos** — deterministic fault injection for the Fairwos
//! pipeline: named failpoints driven by a seeded, replayable
//! [`FaultSchedule`], plus the shared [`RetryPolicy`] every retry loop in
//! the workspace uses.
//!
//! # Why a bespoke runtime
//!
//! The workspace's fault coverage used to be a patchwork of one-off test
//! doubles and ad-hoc retry loops, each with its own semantics. This crate
//! gives every I/O and concurrency seam one way to fail on demand:
//!
//! * a **failpoint** is a named hook (`failpoint!("ckpt/fs/write")`) at a
//!   seam, following the `<area>/<component>/<op>` naming convention
//!   (`docs/ROBUSTNESS.md`);
//! * a **schedule** says which points inject what ([`FaultAction`]) and
//!   when ([`Trigger`]): fail-nth, every-nth, seeded probability, or an
//!   explicit key such as a checkpoint generation;
//! * a **runner** replays the schedule deterministically — per-point hit
//!   counters and per-point ChaCha streams derived from one seed, so the
//!   same seed always produces the byte-identical fault sequence. Chaos
//!   runs are replayable bugs, not flakes.
//!
//! # Feature gating
//!
//! Like `fairwos-obs`, the **global** registry (`arm`/`disarm`/`eval`, and
//! therefore every `failpoint!` in production code) only does work with the
//! `enabled` cargo feature; without it `eval` is an empty
//! `#[inline(always)]` body and the seams compile to nothing. The schedule
//! *engine* — [`FaultSchedule`], [`ScheduleRunner`], [`RetryPolicy`] — is
//! always compiled, so test doubles (`FaultyCheckpointStore`,
//! `FaultyModelSource`) drive local runners even in default builds.
//!
//! ```
//! use fairwos_chaos as chaos;
//!
//! let mut schedule = chaos::FaultSchedule::new(42);
//! schedule.rule(
//!     "demo/io/write",
//!     chaos::Trigger::Nth(vec![2]),
//!     chaos::FaultAction::Fail,
//! );
//! // The schedule round-trips through JSON, so a failed soak can print it.
//! let replay = chaos::FaultSchedule::from_json(&schedule.to_json()).unwrap();
//!
//! let mut runner = chaos::ScheduleRunner::new(replay);
//! assert_eq!(runner.fire("demo/io/write"), None);
//! assert_eq!(runner.fire("demo/io/write"), Some(chaos::FaultAction::Fail));
//! assert_eq!(runner.log().len(), 1);
//! ```

mod clock;
mod json;
mod retry;
mod rng;
mod schedule;

pub use clock::monotonic_micros;
pub use retry::RetryPolicy;
pub use rng::{fnv1a64, mix};
pub use schedule::{FaultAction, FaultRule, FaultSchedule, InjectedFault, ScheduleRunner, Trigger};

/// Whether the `enabled` feature compiled the global failpoint registry in.
///
/// Harness code (e.g. `exp_chaos`) uses this to refuse to run in builds
/// where arming a schedule would be a silent no-op.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Evaluates a named failpoint against the globally armed schedule.
///
/// `failpoint!("area/component/op")` returns `Option<FaultAction>`; the
/// two-argument form `failpoint!("ckpt/fs/read", generation)` also matches
/// [`Trigger::Key`] rules against the key. Without the `enabled` feature
/// both forms compile to `None`.
#[macro_export]
macro_rules! failpoint {
    ($point:expr) => {
        $crate::eval($point)
    };
    ($point:expr, $key:expr) => {
        $crate::eval_keyed($point, $key)
    };
}

#[cfg(feature = "enabled")]
mod registry;

#[cfg(feature = "enabled")]
pub use registry::{arm, disarm, eval, eval_keyed, injection_log};

#[cfg(not(feature = "enabled"))]
mod noop {
    //! No-op stand-ins compiled without the `enabled` feature: every body
    //! is trivial and `#[inline(always)]`, so `failpoint!` call sites —
    //! and the fault-handling branches behind them — disappear from
    //! release builds.

    use crate::{FaultAction, FaultSchedule, InjectedFault};

    /// Arms the global registry (no-op in this build).
    #[inline(always)]
    pub fn arm(_schedule: FaultSchedule) {}

    /// Disarms the global registry (always empty in this build).
    #[inline(always)]
    pub fn disarm() -> Vec<InjectedFault> {
        Vec::new()
    }

    /// Evaluates a failpoint (always `None` in this build).
    #[inline(always)]
    pub fn eval(_point: &str) -> Option<FaultAction> {
        None
    }

    /// Evaluates a keyed failpoint (always `None` in this build).
    #[inline(always)]
    pub fn eval_keyed(_point: &str, _key: u64) -> Option<FaultAction> {
        None
    }

    /// Injection log snapshot (always empty in this build).
    #[inline(always)]
    pub fn injection_log() -> Vec<InjectedFault> {
        Vec::new()
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{arm, disarm, eval, eval_keyed, injection_log};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failpoint_macro_is_inert_unless_armed() {
        // Without the feature this is the no-op; with it, nothing is armed
        // here (registry tests serialize arming behind their own gate), so
        // in both builds an unarmed point yields `None`.
        if !is_enabled() {
            assert_eq!(failpoint!("lib_test/unarmed/op"), None);
            assert_eq!(failpoint!("lib_test/unarmed/op", 3), None);
            assert!(disarm().is_empty());
        }
    }
}
