//! Property tests for the chaos engine: the retry plan is a pure, bounded
//! function of the policy; fault schedules survive a JSON round trip
//! byte-identically; and two runners built from the same schedule inject
//! byte-identical fault sequences — the replay contract `exp_chaos` leans on.

use fairwos_chaos::{FaultAction, FaultSchedule, RetryPolicy, ScheduleRunner, Trigger};
use proptest::prelude::*;

fn action_strategy() -> impl Strategy<Value = FaultAction> {
    prop_oneof![
        Just(FaultAction::Fail),
        (1u64..1_000_000).prop_map(|micros| FaultAction::Delay { micros }),
        Just(FaultAction::Torn),
        Just(FaultAction::Corrupt),
        Just(FaultAction::Vanish),
    ]
}

fn trigger_strategy() -> impl Strategy<Value = Trigger> {
    prop_oneof![
        prop::collection::vec(1u64..64, 0..4).prop_map(Trigger::Nth),
        (0u64..16).prop_map(Trigger::Every),
        (0.0f64..1.0).prop_map(Trigger::Prob),
        prop::collection::vec(0u64..64, 0..4).prop_map(Trigger::Key),
    ]
}

/// Failpoint names in the repo's `<area>/<component>/<op>` convention.
fn point_name() -> impl Strategy<Value = String> {
    "[a-z]{1,6}(/[a-z]{1,6}){0,2}"
}

fn schedule_strategy() -> impl Strategy<Value = FaultSchedule> {
    let rules = prop::collection::vec((trigger_strategy(), action_strategy()), 0..3);
    (
        any::<u64>(),
        prop::collection::vec((point_name(), rules), 0..4),
    )
        .prop_map(|(seed, points)| {
            let mut schedule = FaultSchedule::new(seed);
            for (point, rules) in points {
                // `touch` first so rule-less points stay registered (they
                // count hits, which the round trip must also preserve).
                schedule.touch(&point);
                for (trigger, action) in rules {
                    schedule.rule(&point, trigger, action);
                }
            }
            schedule
        })
}

proptest! {
    #[test]
    fn retry_plan_is_pure_bounded_and_deadline_capped(
        attempts in 0u32..12,
        base_us in 0u64..10_000,
        max_us in 0u64..20_000,
        deadline_us in 0u64..50_000,
        seed in any::<u64>(),
    ) {
        let policy = RetryPolicy::backoff(attempts, base_us, max_us)
            .with_deadline_us(deadline_us)
            .with_jitter_seed(seed);
        let plan = policy.delays_us();
        // One planned sleep between each consecutive pair of attempts.
        prop_assert_eq!(plan.len(), attempts.saturating_sub(1) as usize);
        // Pure: the same policy always plans the same delays.
        prop_assert_eq!(&plan, &policy.delays_us());
        // Every sleep respects the per-sleep cap (jitter only shrinks it).
        for &delay in &plan {
            prop_assert!(delay <= max_us, "delay {delay} > cap {max_us}");
        }
        // A non-zero deadline bounds the *cumulative* planned delay.
        if deadline_us > 0 {
            let total: u64 = plan.iter().sum();
            prop_assert!(total <= deadline_us, "total {total} > deadline {deadline_us}");
        }
    }

    #[test]
    fn retry_run_accounts_every_attempt(
        budget in 1u32..10,
        failures in 0u32..12,
    ) {
        let mut observed = Vec::new();
        let result: Result<u32, String> = RetryPolicy::attempts(budget).run(
            |attempt| {
                if attempt <= failures {
                    Err(format!("transient {attempt}"))
                } else {
                    Ok(attempt)
                }
            },
            |attempt, _| observed.push(attempt),
        );
        if failures >= budget {
            // Budget exhausted: the *last* error surfaces, every failed
            // attempt was observed, and none ran past the budget.
            prop_assert_eq!(result, Err(format!("transient {budget}")));
            prop_assert_eq!(observed.len() as u32, budget);
        } else {
            prop_assert_eq!(result, Ok(failures + 1));
            prop_assert_eq!(observed.len() as u32, failures);
        }
        for (i, &attempt) in observed.iter().enumerate() {
            prop_assert_eq!(attempt, i as u32 + 1);
        }
    }

    #[test]
    fn schedule_round_trips_through_json(schedule in schedule_strategy()) {
        let json = schedule.to_json();
        let back = FaultSchedule::from_json(&json).unwrap_or_else(|e| panic!("parse: {e}"));
        prop_assert_eq!(&back, &schedule);
        // And the re-serialization is byte-identical, so a printed schedule
        // is a stable reproduction artifact.
        prop_assert_eq!(back.to_json(), json);
    }

    #[test]
    fn same_schedule_runners_fire_identically(
        schedule in schedule_strategy(),
        calls in prop::collection::vec((any::<usize>(), prop::option::of(0u64..64)), 0..200),
    ) {
        let points: Vec<String> = schedule.points().map(str::to_string).collect();
        let mut a = ScheduleRunner::new(schedule.clone());
        let mut b = ScheduleRunner::new(schedule);
        for (slot, key) in calls {
            if points.is_empty() {
                break;
            }
            let point = &points[slot % points.len()];
            let (fired_a, fired_b) = match key {
                Some(k) => (a.fire_keyed(point, k), b.fire_keyed(point, k)),
                None => (a.fire(point), b.fire(point)),
            };
            prop_assert_eq!(fired_a, fired_b);
            prop_assert_eq!(a.hits(point), b.hits(point));
        }
        // The replay fingerprint is byte-identical, and injections are
        // numbered consecutively from zero.
        prop_assert_eq!(a.fault_sequence(), b.fault_sequence());
        for (i, fault) in a.log().iter().enumerate() {
            prop_assert_eq!(fault.seq, i as u64);
        }
    }

    #[test]
    fn byte_mutations_keep_their_documented_shapes(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Torn keeps exactly the first half, unaltered.
        let mut torn = bytes.clone();
        FaultAction::Torn.apply_to_bytes(&mut torn);
        prop_assert_eq!(torn.len(), bytes.len() / 2);
        prop_assert_eq!(&torn[..], &bytes[..bytes.len() / 2]);
        // Corrupt preserves length and flips exactly one byte.
        let mut corrupt = bytes.clone();
        let changed = FaultAction::Corrupt.apply_to_bytes(&mut corrupt);
        prop_assert_eq!(changed, !bytes.is_empty());
        prop_assert_eq!(corrupt.len(), bytes.len());
        let diffs = corrupt.iter().zip(&bytes).filter(|(a, b)| a != b).count();
        prop_assert_eq!(diffs, usize::from(!bytes.is_empty()));
    }
}
