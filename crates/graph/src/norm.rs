//! Adjacency normalizations used by the GNN layers.

use crate::{CsrMatrix, Graph};

/// The Kipf–Welling symmetrically normalized adjacency with self-loops:
///
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}`, where `D̃ = D + I`.
///
/// This is the propagation matrix of the GCN backbone (paper Eq. 7–8 with
/// GCN's AGGREGATE/COMBINE). `Â` is symmetric, so the backward pass reuses
/// the same matrix.
pub fn gcn_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let inv_sqrt: Vec<f32> = (0..n)
        .map(|v| 1.0 / ((g.degree(v) + 1) as f32).sqrt())
        .collect();
    let mut triplets = Vec::with_capacity(g.num_arcs() + n);
    for u in 0..n {
        // Self-loop term.
        triplets.push((u, u, inv_sqrt[u] * inv_sqrt[u]));
        for &v in g.neighbors(u) {
            triplets.push((u, v, inv_sqrt[u] * inv_sqrt[v]));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// The plain (unnormalized) adjacency `A` as a CSR matrix with unit values.
///
/// GIN's sum aggregation `Σ_{v∈N(u)} h_v` is `A·H` with this matrix.
pub fn sum_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(g.num_arcs());
    for u in 0..n {
        for &v in g.neighbors(u) {
            triplets.push((u, v, 1.0));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Row-normalized adjacency `D^{-1} A` (mean aggregation), without
/// self-loops. Isolated nodes get an all-zero row.
///
/// Used by the structure-only teacher in the FairGKD baseline.
pub fn row_normalized_adjacency(g: &Graph) -> CsrMatrix {
    let n = g.num_nodes();
    let mut triplets = Vec::with_capacity(g.num_arcs());
    for u in 0..n {
        let d = g.degree(u);
        if d == 0 {
            continue;
        }
        let w = 1.0 / d as f32;
        for &v in g.neighbors(u) {
            triplets.push((u, v, w));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use fairwos_tensor::approx_eq;

    #[test]
    fn gcn_norm_two_node_path() {
        // Path 0-1: both nodes have degree 1, D̃ = 2.
        let g = GraphBuilder::new(2).edge(0, 1).build();
        let a = gcn_normalized_adjacency(&g);
        assert!(approx_eq(a.get(0, 0), 0.5, 1e-6));
        assert!(approx_eq(a.get(0, 1), 0.5, 1e-6));
        assert!(approx_eq(a.get(1, 1), 0.5, 1e-6));
    }

    #[test]
    fn gcn_norm_is_symmetric() {
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .edge(4, 0)
            .edge(1, 3)
            .build();
        let a = gcn_normalized_adjacency(&g);
        assert!(a.is_symmetric(1e-6));
    }

    #[test]
    fn gcn_norm_isolated_node_keeps_self_loop() {
        let g = GraphBuilder::new(2).build();
        let a = gcn_normalized_adjacency(&g);
        assert!(approx_eq(a.get(0, 0), 1.0, 1e-6));
        assert!(approx_eq(a.get(1, 1), 1.0, 1e-6));
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn gcn_norm_spectral_norm_at_most_one() {
        // Eigenvalues of D̃^{-1/2}(A+I)D̃^{-1/2} lie in (-1, 1], so Â is a
        // contraction in ℓ2: ‖Âx‖ ≤ ‖x‖. Check on a star graph (maximally
        // irregular) with random vectors.
        let mut b = GraphBuilder::new(6);
        for i in 1..6 {
            b.add_edge(0, i);
        }
        let a = gcn_normalized_adjacency(&b.build());
        let mut rng = fairwos_tensor::seeded_rng(0);
        for _ in 0..10 {
            let x = fairwos_tensor::Matrix::rand_uniform(6, 1, -1.0, 1.0, &mut rng);
            let y = a.spmm(&x);
            assert!(
                y.frobenius_norm() <= x.frobenius_norm() * (1.0 + 1e-5),
                "‖Âx‖ = {} > ‖x‖ = {}",
                y.frobenius_norm(),
                x.frobenius_norm()
            );
        }
    }

    #[test]
    fn row_norm_rows_sum_to_one_or_zero() {
        let g = GraphBuilder::new(4).edge(0, 1).edge(0, 2).build();
        let a = row_normalized_adjacency(&g);
        let sums = a.row_sums();
        assert!(approx_eq(sums[0], 1.0, 1e-6));
        assert!(approx_eq(sums[1], 1.0, 1e-6));
        assert!(approx_eq(sums[2], 1.0, 1e-6));
        assert_eq!(sums[3], 0.0); // isolated
        assert!(approx_eq(a.get(0, 1), 0.5, 1e-6));
    }
}
