//! Graph traversals: BFS k-hop neighbourhoods and connected components.
//!
//! The paper defines a node's "subgraph" `G_u` as its message-passing
//! receptive field — the k-hop neighbourhood for a k-layer GNN. The
//! counterfactual module compares representations rather than raw subgraphs
//! (paper Eq. 12), but the k-hop extraction is exposed for analysis,
//! visualisation, and tests of the receptive-field argument.

use crate::Graph;
use std::collections::VecDeque;

/// Nodes within `k` hops of `source` (including `source`), in BFS order.
///
/// # Panics
/// If `source` is out of range.
pub fn khop_nodes(g: &Graph, source: usize, k: usize) -> Vec<usize> {
    assert!(
        source < g.num_nodes(),
        "source {source} out of {} nodes",
        g.num_nodes()
    );
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        if dist[u] == k {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    order
}

/// The k-hop ego subgraph around `source`: the induced subgraph on
/// [`khop_nodes`] plus the index of `source` inside it.
///
/// # Panics
/// If `source` is out of range.
pub fn khop_subgraph(g: &Graph, source: usize, k: usize) -> (Graph, Vec<usize>, usize) {
    let nodes = khop_nodes(g, source, k);
    let (sub, map) = g.induced_subgraph(&nodes);
    // audit:allow(FW001): khop_nodes always includes source, so the lookup cannot fail
    let center = map
        .iter()
        .position(|&old| old == source)
        .expect("source is in its own k-hop set");
    (sub, map, center)
}

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.num_nodes()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected-component label for each node (labels are `0..num_components`).
pub fn connected_components(g: &Graph) -> (usize, Vec<usize>) {
    let n = g.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (next, label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 0-1-2-3 path plus isolated node 4.
    fn path_plus_isolate() -> Graph {
        GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn khop_nodes_radius() {
        let g = path_plus_isolate();
        assert_eq!(khop_nodes(&g, 0, 0), vec![0]);
        assert_eq!(khop_nodes(&g, 0, 1), vec![0, 1]);
        assert_eq!(khop_nodes(&g, 0, 2), vec![0, 1, 2]);
        assert_eq!(khop_nodes(&g, 1, 1), vec![1, 0, 2]);
        assert_eq!(khop_nodes(&g, 4, 3), vec![4]);
    }

    #[test]
    fn khop_subgraph_centers_source() {
        let g = path_plus_isolate();
        let (sub, map, center) = khop_subgraph(&g, 2, 1);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(center, 1);
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn bfs_distances_unreachable() {
        let g = path_plus_isolate();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[..4], [0, 1, 2, 3]);
        assert_eq!(d[4], usize::MAX);
    }

    #[test]
    fn connected_components_counts() {
        let g = path_plus_isolate();
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn single_component_cycle() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 0)
            .build();
        let (count, _) = connected_components(&g);
        assert_eq!(count, 1);
        // Whole graph reachable in 2 hops from any node of a 4-cycle.
        assert_eq!(khop_nodes(&g, 0, 2).len(), 4);
    }
}
