//! Random-graph generators.
//!
//! Two families:
//!
//! * [`erdos_renyi`] — the null model, used by tests and micro-benchmarks.
//! * [`sensitive_sbm`] — a two-block stochastic block model whose blocks are
//!   the *sensitive groups*. This is the structural half of the bias model
//!   behind every synthetic benchmark: real fairness datasets exhibit
//!   *sensitive homophily* (same-group nodes link more often), which is how
//!   a GNN's message passing leaks the hidden sensitive attribute even when
//!   the attribute itself is absent from the features.

use crate::{Graph, GraphBuilder};
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// Sampling uses geometric skips, so the cost is `O(n + |E|)` rather than
/// `O(n²)` — `G(n, p)` at Table-I scale (30k nodes) stays fast.
///
/// # Panics
/// If `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p = {p} outside [0, 1]");
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Walk the strictly-upper-triangular pairs in row-major order, skipping
    // geometrically distributed gaps between successes.
    let log_q = (1.0 - p).ln();
    let total_pairs = n * (n - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip).saturating_add(1);
        if idx > total_pairs as u64 {
            break;
        }
        let (a, bb) = pair_from_index(n, (idx - 1) as usize);
        b.add_edge(a, bb);
    }
    b.build()
}

/// Maps a linear index in `[0, n(n-1)/2)` to the corresponding unordered
/// pair `(u, v)` with `u < v`, enumerated row-major.
fn pair_from_index(n: usize, idx: usize) -> (usize, usize) {
    // Row u contributes (n - 1 - u) pairs. Find u by walking rows; n is at
    // most tens of thousands so the loop is negligible next to edge work.
    let mut remaining = idx;
    for u in 0..n {
        let row = n - 1 - u;
        if remaining < row {
            return (u, u + 1 + remaining);
        }
        remaining -= row;
    }
    unreachable!("index {idx} out of range for n = {n}")
}

/// Two-block stochastic block model keyed by a binary sensitive attribute.
///
/// `sens[v] ∈ {0, 1}` assigns each node to a block; same-block pairs link
/// with probability `p_intra`, cross-block pairs with `p_inter`.
/// `p_intra > p_inter` produces sensitive homophily; the ratio controls how
/// much structure leaks the hidden attribute.
///
/// # Panics
/// If `p_intra` or `p_inter` is outside `[0, 1]`.
pub fn sensitive_sbm(sens: &[bool], p_intra: f64, p_inter: f64, rng: &mut impl Rng) -> Graph {
    assert!((0.0..=1.0).contains(&p_intra) && (0.0..=1.0).contains(&p_inter));
    let n = sens.len();
    let mut b = GraphBuilder::new(n);
    // Sample per-pair; block sizes in our benchmarks keep this tractable at
    // the default scale, and the geometric-skip trick is applied per stratum.
    let groups: [Vec<usize>; 2] = {
        let mut g0 = Vec::new();
        let mut g1 = Vec::new();
        for (v, &s) in sens.iter().enumerate() {
            if s {
                g1.push(v)
            } else {
                g0.push(v)
            }
        }
        [g0, g1]
    };
    // Intra-block edges for each group.
    for group in &groups {
        sample_pairs_within(group, p_intra, rng, &mut b);
    }
    // Inter-block edges.
    sample_pairs_between(&groups[0], &groups[1], p_inter, rng, &mut b);
    b.build()
}

/// Samples Bernoulli(`p`) edges among all unordered pairs within `nodes`,
/// adding them to `b`. Exposed for stratified generators (the synthetic
/// benchmarks sample edges per (sensitive, label) stratum).
pub fn sample_pairs_within(nodes: &[usize], p: f64, rng: &mut impl Rng, b: &mut GraphBuilder) {
    let m = nodes.len();
    if m < 2 || p <= 0.0 {
        return;
    }
    let total = m * (m - 1) / 2;
    for idx in sample_indices(total, p, rng) {
        let (i, j) = pair_from_index(m, idx);
        b.add_edge(nodes[i], nodes[j]);
    }
}

/// Samples Bernoulli(`p`) edges among all pairs between the disjoint node
/// sets `a` and `c`, adding them to `b`.
pub fn sample_pairs_between(
    a: &[usize],
    c: &[usize],
    p: f64,
    rng: &mut impl Rng,
    b: &mut GraphBuilder,
) {
    if a.is_empty() || c.is_empty() || p <= 0.0 {
        return;
    }
    let total = a.len() * c.len();
    for idx in sample_indices(total, p, rng) {
        b.add_edge(a[idx / c.len()], c[idx % c.len()]);
    }
}

/// Indices of successes among `total` Bernoulli(p) trials via geometric skips.
fn sample_indices(total: usize, p: f64, rng: &mut impl Rng) -> Vec<usize> {
    if p >= 1.0 {
        return (0..total).collect();
    }
    let log_q = (1.0 - p).ln();
    let mut out = Vec::new();
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip).saturating_add(1);
        if idx > total as u64 {
            break;
        }
        // idx ≤ total ≤ usize::MAX here, so the cast cannot truncate.
        debug_assert!(idx - 1 < total as u64);
        out.push((idx - 1) as usize);
    }
    out
}

/// Fraction of edges whose endpoints share the sensitive attribute.
/// 0.5 means no homophily; 1.0 means perfectly segregated.
///
/// # Panics
/// If `sens.len()` differs from the node count.
pub fn sensitive_homophily(g: &Graph, sens: &[bool]) -> f64 {
    assert_eq!(sens.len(), g.num_nodes());
    let mut same = 0usize;
    let mut total = 0usize;
    for (u, v) in g.edges() {
        total += 1;
        if sens[u] == sens[v] {
            same += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        same as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairwos_tensor::seeded_rng;

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 6;
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = pair_from_index(n, idx);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)), "duplicate pair ({u},{v})");
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = seeded_rng(7);
        let empty = erdos_renyi(10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let complete = erdos_renyi(10, 1.0, &mut rng);
        assert_eq!(complete.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let mut rng = seeded_rng(8);
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_deterministic_given_seed() {
        let a = erdos_renyi(50, 0.1, &mut seeded_rng(3));
        let b = erdos_renyi(50, 0.1, &mut seeded_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn sbm_produces_homophily() {
        let mut rng = seeded_rng(9);
        let sens: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let g = sensitive_sbm(&sens, 0.05, 0.005, &mut rng);
        let h = sensitive_homophily(&g, &sens);
        assert!(h > 0.8, "homophily {h} too low for 10:1 intra/inter ratio");
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn sbm_no_homophily_when_rates_equal() {
        let mut rng = seeded_rng(10);
        let sens: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let g = sensitive_sbm(&sens, 0.02, 0.02, &mut rng);
        let h = sensitive_homophily(&g, &sens);
        assert!((h - 0.5).abs() < 0.1, "homophily {h} should be ~0.5");
    }

    #[test]
    fn sbm_handles_single_group() {
        let mut rng = seeded_rng(11);
        let sens = vec![false; 20];
        let g = sensitive_sbm(&sens, 0.3, 0.9, &mut rng);
        assert!(g.num_edges() > 0);
        assert_eq!(sensitive_homophily(&g, &sens), 1.0);
    }

    #[test]
    fn homophily_empty_graph_is_zero() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(sensitive_homophily(&g, &[true, false, true]), 0.0);
    }
}
