//! Deterministic GraphSAGE-style neighbor sampling and BFS partitioning.
//!
//! Mini-batch training (see `docs/SCALING.md`) needs three primitives, all
//! of which live here so they can be property-tested against the CSR layer
//! without pulling in the training stack:
//!
//! 1. [`partition`] — shards the node set into cache-local BFS blocks; every
//!    block is one mini-batch's seed set.
//! 2. [`NeighborSampler`] — per-layer fanout sampling over the CSR. Sampling
//!    is a *pure function* of `(seed, salt, layer, node)`: each draw runs on
//!    its own ChaCha stream derived by a SplitMix64 mix of those inputs, so
//!    the result is independent of thread count, call order, and how many
//!    other nodes were sampled before it.
//! 3. [`SubgraphSample`] — the induced computation subgraph of one block:
//!    global↔local id remapping plus *restriction* of the full graph's
//!    normalized propagation matrices to the sampled edge set.
//!
//! # Determinism contract
//!
//! * `fanout = 0` (or a fanout ≥ the node's degree) copies the neighbor list
//!   verbatim and constructs **no RNG** — an "infinite fanout" sample of the
//!   whole node set restricts to the full propagation matrix *bit-for-bit*
//!   (same values, same per-row column order, hence the same FMA order in
//!   `spmm`).
//! * The sampled edge set is symmetrized (if `u` sampled `v`, the local
//!   matrices also carry `v → u`), keeping the restricted GCN/GIN operators
//!   symmetric — the analytic backward passes in `fairwos-nn` rely on
//!   `Âᵀ = Â` for those backbones.

use crate::{CsrMatrix, Graph, GraphBuilder};
use fairwos_tensor::seeded_rng;
use rand::Rng;
use std::collections::VecDeque;

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Chains three values through [`splitmix64`] into one stream id.
fn mix3(a: u64, b: u64, c: u64) -> u64 {
    splitmix64(splitmix64(splitmix64(a) ^ b) ^ c)
}

/// Deterministic per-layer fanout sampler over a [`Graph`]'s CSR.
///
/// Each `(salt, layer, node)` draw uses a dedicated ChaCha stream of the
/// sampler's seed, so sampling one node never advances another node's
/// stream: the sample is a pure function of `(seed, salt, layer, node)`.
/// The per-epoch `salt` decorrelates epochs without any mutable state.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    seed: u64,
    fanout: Vec<usize>,
}

impl NeighborSampler {
    /// A sampler drawing `fanout[l]` neighbors at layer `l`; a fanout of
    /// `0` means *all* neighbors (infinite fanout).
    ///
    /// # Panics
    /// If `fanout` is empty.
    pub fn new(seed: u64, fanout: Vec<usize>) -> Self {
        assert!(!fanout.is_empty(), "sampler needs at least one layer");
        Self { seed, fanout }
    }

    /// Number of sampling layers (the GNN depth this sampler serves).
    pub fn num_layers(&self) -> usize {
        self.fanout.len()
    }

    /// The per-layer fanout vector (`0` = all neighbors).
    pub fn fanout(&self) -> &[usize] {
        &self.fanout
    }

    /// Samples `min(fanout[layer], degree)` distinct neighbors of `node`,
    /// returned in ascending order.
    ///
    /// When the fanout is `0` or covers the whole neighborhood the CSR
    /// neighbor list is copied verbatim and no RNG is constructed;
    /// otherwise a partial Fisher–Yates over the neighbor indices runs on
    /// the ChaCha stream `mix3(salt, layer, node)` of `seed`.
    ///
    /// # Panics
    /// If `layer` or `node` is out of range.
    pub fn sample_neighbors(
        &self,
        graph: &Graph,
        salt: u64,
        layer: usize,
        node: usize,
    ) -> Vec<usize> {
        let neigh = graph.neighbors(node);
        let f = self.fanout[layer];
        if f == 0 || f >= neigh.len() {
            return neigh.to_vec();
        }
        let mut rng = seeded_rng(self.seed);
        rng.set_stream(mix3(salt, layer as u64, node as u64));
        let mut idx: Vec<usize> = (0..neigh.len()).collect();
        for i in 0..f {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        let mut out: Vec<usize> = idx[..f].iter().map(|&i| neigh[i]).collect();
        out.sort_unstable();
        out
    }

    /// Expands `block` (the mini-batch seed nodes) into its layered
    /// computation subgraph.
    ///
    /// Layer-0 samples the seeds' neighborhoods; every node first reached
    /// at layer `l` is expanded once with layer-`l+1` fanout. Nodes first
    /// reached at the deepest layer join the subgraph unexpanded (their
    /// restricted propagation rows carry only the diagonal, if the full
    /// matrix has one). The sampled edge set is symmetrized so the
    /// restricted GCN/GIN operators stay symmetric.
    ///
    /// # Panics
    /// If `block` contains an out-of-range or duplicate node id.
    pub fn sample_block(&self, graph: &Graph, salt: u64, block: &[usize]) -> SubgraphSample {
        let n = graph.num_nodes();
        let mut seen = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(block.len());
        for &v in block {
            assert!(v < n, "block node {v} out of range for {n} nodes");
            assert!(!seen[v], "duplicate node {v} in block");
            seen[v] = true;
            order.push(v);
        }
        // (expanded node, its sampled global neighbors), one entry per
        // expansion; each node is expanded at most once.
        let mut sampled: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut frontier: Vec<usize> = block.to_vec();
        for layer in 0..self.fanout.len() {
            let mut next = Vec::new();
            for &v in &frontier {
                let picks = self.sample_neighbors(graph, salt, layer, v);
                for &u in &picks {
                    if !seen[u] {
                        seen[u] = true;
                        order.push(u);
                        next.push(u);
                    }
                }
                sampled.push((v, picks));
            }
            frontier = next;
        }
        let mut nodes = order;
        nodes.sort_unstable();
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (v, picks) in &sampled {
            let lv = local_index(&nodes, *v);
            for &u in picks {
                let lu = local_index(&nodes, u);
                neighbors[lv].push(lu);
                neighbors[lu].push(lv);
            }
        }
        for list in &mut neighbors {
            list.sort_unstable();
            list.dedup();
        }
        let targets = block.iter().map(|&v| local_index(&nodes, v)).collect();
        SubgraphSample {
            nodes,
            targets,
            neighbors,
        }
    }
}

/// Position of `global` in the sorted `nodes` list.
fn local_index(nodes: &[usize], global: usize) -> usize {
    // audit:allow(FW001): `nodes` contains every id inserted by construction
    nodes
        .binary_search(&global)
        .expect("node is in the subgraph")
}

/// One mini-batch's computation subgraph: the sampled node set with
/// global↔local remapping and the symmetrized sampled edge set.
///
/// Local ids are positions in the ascending global id list, so local id
/// order is monotone in global id order — at infinite fanout over a block
/// covering the whole graph, local and global ids coincide and
/// [`SubgraphSample::restrict`] reproduces the full matrix bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubgraphSample {
    /// Sorted global ids of every node in the subgraph.
    nodes: Vec<usize>,
    /// Local ids of the seed block, in block order.
    targets: Vec<usize>,
    /// Per local node: sorted local ids of its sampled (symmetrized)
    /// neighbors.
    neighbors: Vec<Vec<usize>>,
}

impl SubgraphSample {
    /// Number of nodes in the subgraph.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sorted global ids of the subgraph's nodes; local id = position.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// Local ids of the seed block, in the block's original order.
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// The global id of a local node.
    ///
    /// # Panics
    /// If `local` is out of range.
    pub fn global_of(&self, local: usize) -> usize {
        self.nodes[local]
    }

    /// The local id of a global node, if it is in the subgraph.
    pub fn local_of(&self, global: usize) -> Option<usize> {
        self.nodes.binary_search(&global).ok()
    }

    /// The sampled (symmetrized) neighbors of a local node, ascending.
    pub fn neighbors_of(&self, local: usize) -> &[usize] {
        &self.neighbors[local]
    }

    /// Number of undirected sampled edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Restricts a full-graph propagation matrix (GCN-normalized, row
    /// -normalized, or raw sum adjacency) to the sampled edge set, keeping
    /// the full matrix's values verbatim. Diagonal entries of the full
    /// matrix are always kept (the GCN normalization's self-loop); matrices
    /// without a diagonal are unaffected.
    ///
    /// # Panics
    /// If `full` is not square over the parent graph's node ids.
    pub fn restrict(&self, full: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            full.rows(),
            full.cols(),
            "propagation matrix must be square"
        );
        let nl = self.nodes.len();
        let mut triplets = Vec::new();
        for (lv, &v) in self.nodes.iter().enumerate() {
            for &lu in &self.neighbors[lv] {
                let w = full.get(v, self.nodes[lu]);
                if w != 0.0 {
                    triplets.push((lv, lu, w));
                }
            }
            let d = full.get(v, v);
            if d != 0.0 {
                triplets.push((lv, lv, d));
            }
        }
        CsrMatrix::from_triplets(nl, nl, &triplets)
    }

    /// The sampled subgraph as an undirected [`Graph`] over local ids
    /// (needed by the GAT backbone, whose attention walks the adjacency
    /// structure).
    pub fn local_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.nodes.len());
        for (lv, list) in self.neighbors.iter().enumerate() {
            for &lu in list {
                if lu > lv {
                    b.add_edge(lv, lu);
                }
            }
        }
        b.build()
    }
}

/// Shards the node set into BFS-grown blocks of at most `batch_nodes`
/// nodes; every node lands in exactly one block and blocks are sorted
/// ascending.
///
/// BFS seeds are visited in ascending `(degree, id)` order — peripheral
/// low-degree nodes start new regions, and the BFS queue persists across
/// block cuts so consecutive blocks tile contiguous regions of the graph
/// (cache-local propagation rows). With `batch_nodes ≥ num_nodes` the
/// single block is exactly `0..num_nodes`.
///
/// # Panics
/// If `batch_nodes` is zero.
pub fn partition(graph: &Graph, batch_nodes: usize) -> Vec<Vec<usize>> {
    assert!(batch_nodes >= 1, "batch_nodes must be at least 1");
    let n = graph.num_nodes();
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_by_key(|&v| (graph.degree(v), v));
    let mut queued = vec![false; n];
    let mut queue = VecDeque::new();
    let mut blocks = Vec::new();
    let mut current: Vec<usize> = Vec::with_capacity(batch_nodes.min(n));
    for &s in &seeds {
        if queued[s] {
            continue;
        }
        queued[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            current.push(v);
            if current.len() == batch_nodes {
                current.sort_unstable();
                blocks.push(std::mem::take(&mut current));
            }
            for &u in graph.neighbors(v) {
                if !queued[u] {
                    queued[u] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    if !current.is_empty() {
        current.sort_unstable();
        blocks.push(current);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::sensitive_sbm;
    use crate::{gcn_normalized_adjacency, row_normalized_adjacency};

    fn test_graph() -> Graph {
        let sens: Vec<bool> = (0..45).map(|v| v % 3 == 0).collect();
        sensitive_sbm(&sens, 0.25, 0.05, &mut seeded_rng(11))
    }

    #[test]
    fn partition_is_a_disjoint_cover() {
        let g = test_graph();
        let blocks = partition(&g, 7);
        let mut seen = vec![false; g.num_nodes()];
        for block in &blocks {
            assert!(block.len() <= 7);
            assert!(block.windows(2).all(|w| w[0] < w[1]), "block not sorted");
            for &v in block {
                assert!(!seen[v], "node {v} in two blocks");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "a node was dropped");
    }

    #[test]
    fn partition_with_large_budget_is_the_identity_block() {
        let g = test_graph();
        let blocks = partition(&g, g.num_nodes() + 5);
        assert_eq!(blocks, vec![(0..g.num_nodes()).collect::<Vec<_>>()]);
    }

    #[test]
    fn sampling_is_pure_and_respects_fanout() {
        let g = test_graph();
        let s = NeighborSampler::new(9, vec![3, 2]);
        for v in 0..g.num_nodes() {
            let a = s.sample_neighbors(&g, 77, 0, v);
            let b = s.sample_neighbors(&g, 77, 0, v);
            assert_eq!(a, b, "sampling is not pure");
            assert_eq!(a.len(), g.degree(v).min(3), "fanout bound violated");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "not sorted/distinct");
            for &u in &a {
                assert!(g.neighbors(v).binary_search(&u).is_ok(), "dangling pick");
            }
        }
    }

    #[test]
    fn zero_fanout_copies_the_neighbor_list() {
        let g = test_graph();
        let s = NeighborSampler::new(0, vec![0]);
        for v in 0..g.num_nodes() {
            assert_eq!(s.sample_neighbors(&g, 5, 0, v), g.neighbors(v));
        }
    }

    #[test]
    fn salt_decorrelates_epochs() {
        let g = test_graph();
        let s = NeighborSampler::new(1, vec![2]);
        let hub = (0..g.num_nodes()).max_by_key(|&v| g.degree(v)).unwrap();
        assert!(g.degree(hub) > 2, "need a node with spare neighbors");
        let across: std::collections::BTreeSet<Vec<usize>> = (0..32)
            .map(|salt| s.sample_neighbors(&g, salt, 0, hub))
            .collect();
        assert!(across.len() > 1, "salt has no effect on sampling");
    }

    #[test]
    fn block_sample_remaps_round_trip() {
        let g = test_graph();
        let s = NeighborSampler::new(4, vec![3, 3]);
        let block = partition(&g, 8).remove(1);
        let sub = s.sample_block(&g, 13, &block);
        for local in 0..sub.num_nodes() {
            assert_eq!(sub.local_of(sub.global_of(local)), Some(local));
        }
        assert_eq!(sub.targets().len(), block.len());
        for (t, &v) in sub.targets().iter().zip(&block) {
            assert_eq!(sub.global_of(*t), v);
        }
        // Every sampled edge is a real edge of the parent graph.
        for lv in 0..sub.num_nodes() {
            let v = sub.global_of(lv);
            for &lu in sub.neighbors_of(lv) {
                let u = sub.global_of(lu);
                assert!(g.has_edge(v, u), "sampled non-edge {v}-{u}");
            }
        }
    }

    #[test]
    fn infinite_fanout_full_block_restricts_to_the_full_matrix() {
        let g = test_graph();
        let s = NeighborSampler::new(0, vec![0]);
        let all: Vec<usize> = (0..g.num_nodes()).collect();
        let sub = s.sample_block(&g, 99, &all);
        assert_eq!(sub.nodes(), &all[..]);
        for full in &[gcn_normalized_adjacency(&g), row_normalized_adjacency(&g)] {
            let local = sub.restrict(full);
            assert_eq!(local.nnz(), full.nnz());
            for r in 0..g.num_nodes() {
                assert_eq!(local.row(r), full.row(r), "row {r} differs");
            }
        }
    }

    #[test]
    fn local_graph_is_the_symmetrized_sample() {
        let g = test_graph();
        let s = NeighborSampler::new(2, vec![2]);
        let block = partition(&g, 10).remove(0);
        let sub = s.sample_block(&g, 3, &block);
        let lg = sub.local_graph();
        assert_eq!(lg.num_nodes(), sub.num_nodes());
        assert_eq!(lg.num_edges(), sub.num_edges());
        for lv in 0..sub.num_nodes() {
            assert_eq!(lg.neighbors(lv), sub.neighbors_of(lv));
        }
    }
}
