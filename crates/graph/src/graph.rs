//! Undirected graph in CSR (compressed sparse row) form.

use serde::{Deserialize, Serialize};

/// An undirected, unweighted graph over nodes `0..num_nodes`.
///
/// Stored in CSR form with both directions of every edge materialised, so
/// `neighbors(v)` is a single contiguous, sorted slice — the access pattern
/// of message passing. Self-loops are not stored (GCN normalization adds the
/// implicit self-loop itself); parallel edges are deduplicated at build time.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    /// CSR row pointers, length `num_nodes + 1`.
    row_ptr: Vec<usize>,
    /// CSR column indices (neighbour lists, each sorted ascending).
    col_idx: Vec<usize>,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len() / 2
    }

    /// Number of directed arcs stored (twice [`Graph::num_edges`]).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.col_idx.len()
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    /// If `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        assert!(
            v < self.num_nodes,
            "node {v} out of {} nodes",
            self.num_nodes
        );
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Average degree `2|E| / |V|`. The statistic reported in Table I.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_nodes as f64
        }
    }

    /// True if the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.num_nodes && v < self.num_nodes && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_nodes).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u < v)
                .map(move |&v| (u, v))
        })
    }

    /// The raw CSR row-pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The raw CSR column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Induced subgraph on `nodes` (deduplicated internally). Returns the
    /// subgraph and the mapping `new index -> old index`.
    ///
    /// # Panics
    /// If any node in `nodes` is out of range.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut keep: Vec<usize> = nodes.to_vec();
        keep.sort_unstable();
        keep.dedup();
        let mut old_to_new = vec![usize::MAX; self.num_nodes];
        for (new, &old) in keep.iter().enumerate() {
            assert!(
                old < self.num_nodes,
                "node {old} out of {} nodes",
                self.num_nodes
            );
            old_to_new[old] = new;
        }
        let mut b = GraphBuilder::new(keep.len());
        for &u in &keep {
            for &v in self.neighbors(u) {
                if u < v && old_to_new[v] != usize::MAX {
                    b = b.edge(old_to_new[u], old_to_new[v]);
                }
            }
        }
        (b.build(), keep)
    }

    /// Degree histogram up to `max_degree` (last bucket collects the tail).
    pub fn degree_histogram(&self, max_degree: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_degree + 1];
        for v in 0..self.num_nodes {
            hist[self.degree(v).min(max_degree)] += 1;
        }
        hist
    }
}

/// Incremental edge-list builder for [`Graph`].
///
/// Accepts duplicate edges and self-loops and silently drops/merges them at
/// [`GraphBuilder::build`]; generators can therefore sample edges without
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// A builder for a graph over `num_nodes` nodes and no edges yet.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` (by value, chainable).
    ///
    /// # Panics
    /// If `u` or `v` is out of range.
    #[must_use]
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        self.add_edge(u, v);
        self
    }

    /// Adds the undirected edge `{u, v}` (by reference, for loops).
    ///
    /// # Panics
    /// If `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.num_nodes && v < self.num_nodes,
            "edge ({u},{v}) out of {} nodes",
            self.num_nodes
        );
        self.edges.push((u, v));
    }

    /// Adds every edge in `list`.
    pub fn extend_edges(&mut self, list: impl IntoIterator<Item = (usize, usize)>) {
        for (u, v) in list {
            self.add_edge(u, v);
        }
    }

    /// Number of (possibly duplicate) edges accepted so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into CSR form: drops self-loops, dedups parallel edges,
    /// sorts each neighbour list.
    pub fn build(self) -> Graph {
        let n = self.num_nodes;
        // Count arcs per node (both directions), skipping self-loops.
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            if u != v {
                deg[u] += 1;
                deg[v] += 1;
            }
        }
        let mut row_ptr = vec![0usize; n + 1];
        for v in 0..n {
            row_ptr[v + 1] = row_ptr[v] + deg[v];
        }
        let mut col_idx = vec![0usize; row_ptr[n]];
        let mut cursor = row_ptr.clone();
        for &(u, v) in &self.edges {
            if u != v {
                col_idx[cursor[u]] = v;
                cursor[u] += 1;
                col_idx[cursor[v]] = u;
                cursor[v] += 1;
            }
        }
        // Sort and dedup each neighbour list, then recompact.
        let mut new_col = Vec::with_capacity(col_idx.len());
        let mut new_ptr = vec![0usize; n + 1];
        for v in 0..n {
            let list = &mut col_idx[row_ptr[v]..row_ptr[v + 1]];
            list.sort_unstable();
            let start = new_col.len();
            for &u in list.iter() {
                // `new_col.len() > start` guarantees the index is in bounds
                // and belongs to this row's (sorted) neighbour list.
                if new_col.len() == start || new_col[new_col.len() - 1] != u {
                    new_col.push(u);
                }
            }
            new_ptr[v + 1] = new_col.len();
        }
        Graph {
            num_nodes: n,
            row_ptr: new_ptr,
            col_idx: new_col,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.average_degree(), 2.0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = GraphBuilder::new(4)
            .edge(2, 0)
            .edge(2, 3)
            .edge(2, 1)
            .build();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn duplicates_and_self_loops_dropped() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 0)
            .edge(0, 1)
            .edge(2, 2)
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[usize]);
        assert!(!g.has_edge(2, 2));
    }

    #[test]
    fn has_edge_symmetry() {
        let g = triangle();
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn edges_iterator_counts_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = GraphBuilder::new(5)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 4)
            .build();
        let (sub, map) = g.induced_subgraph(&[1, 3, 2]);
        assert_eq!(map, vec![1, 2, 3]);
        assert_eq!(sub.num_nodes(), 3);
        // Edges 1-2 and 2-3 survive; 0-1 and 3-4 are cut.
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1)); // old 1-2
        assert!(sub.has_edge(1, 2)); // old 2-3
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn degree_histogram_tail_bucket() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(0, 2)
            .edge(0, 3)
            .build();
        // degrees: 3,1,1,1
        assert_eq!(g.degree_histogram(2), vec![0, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "out of 2 nodes")]
    fn builder_rejects_out_of_range() {
        let _ = GraphBuilder::new(2).edge(0, 5);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let g = triangle();
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
