//! Graph representation and kernels for the Fairwos reproduction.
//!
//! Provides the substrate the paper's GNNs run on:
//!
//! * [`Graph`] — an undirected attributed graph in CSR form, built from an
//!   edge list ([`GraphBuilder`]). Message passing iterates a node's
//!   neighbours as one contiguous slice.
//! * [`CsrMatrix`] — a general sparse matrix with values, used for the
//!   symmetrically normalized adjacency `Â = D̃^{-1/2}(A+I)D̃^{-1/2}`
//!   ([`gcn_normalized_adjacency`]) and its sparse–dense products
//!   ([`CsrMatrix::spmm`]).
//! * Random-graph generators ([`generate`]) — Erdős–Rényi and a
//!   sensitive-homophily stochastic block model, the structural bias source
//!   of the synthetic benchmarks.
//! * Traversals ([`traversal`]) — BFS k-hop neighbourhoods (the paper's
//!   "subgraph of node u") and connected components.
//!
//! ```
//! use fairwos_graph::{GraphBuilder, gcn_normalized_adjacency};
//! use fairwos_tensor::Matrix;
//!
//! let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build();
//! assert_eq!(g.degree(1), 2);
//! let a_hat = gcn_normalized_adjacency(&g);
//! let x = Matrix::eye(3);
//! let h = a_hat.spmm(&x); // one GCN propagation of identity features
//! assert_eq!(h.shape(), (3, 3));
//! ```

mod cache;
mod csr;
pub mod generate;
mod graph;
pub mod metrics;
mod norm;
pub mod sampling;
pub mod traversal;

pub use cache::AdjacencyCache;
pub use csr::CsrMatrix;
pub use graph::{Graph, GraphBuilder};
pub use norm::{gcn_normalized_adjacency, row_normalized_adjacency, sum_adjacency};
pub use sampling::{partition, NeighborSampler, SubgraphSample};
