//! Structural graph metrics used as bias diagnostics.
//!
//! The paper's causal story is that the *structure* leaks the sensitive
//! attribute (Fig. 3: `s → edges`). These metrics quantify how much, for a
//! given graph, before any model is trained:
//!
//! * [`sensitive_assortativity`] — the correlation of the sensitive
//!   attribute across edges (Newman's attribute assortativity for a binary
//!   attribute). 0 = structure carries no group signal; 1 = perfectly
//!   segregated. The continuous refinement of
//!   [`crate::generate::sensitive_homophily`].
//! * [`clustering_coefficient`] / [`average_clustering`] — triangle density,
//!   reported alongside Table-I-style statistics.
//! * [`density`] — edge density relative to the complete graph.

use crate::Graph;

/// Edge density: `|E| / (n(n−1)/2)`, in `[0, 1]`. 0 for graphs with < 2
/// nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    g.num_edges() as f64 / (n * (n - 1) / 2) as f64
}

/// Local clustering coefficient of `v`: the fraction of `v`'s neighbour
/// pairs that are themselves connected. 0 for degree < 2.
pub fn clustering_coefficient(g: &Graph, v: usize) -> f64 {
    let neighbors = g.neighbors(v);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Mean local clustering coefficient over all nodes (Watts–Strogatz).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|v| clustering_coefficient(g, v)).sum::<f64>() / n as f64
}

/// Newman's assortativity of a binary node attribute: the Pearson
/// correlation of the attribute across edge endpoints, in `[-1, 1]`.
///
/// 0 when edges mix groups at random, 1 when every edge stays within a
/// group, negative for disassortative (bipartite-like) mixing. Returns 0
/// for graphs with no edges or a constant attribute.
///
/// # Panics
/// If `attr.len()` differs from the node count.
pub fn sensitive_assortativity(g: &Graph, attr: &[bool]) -> f64 {
    assert_eq!(attr.len(), g.num_nodes(), "attribute length vs node count");
    // Edge-endpoint mixing matrix for the binary attribute, counting each
    // undirected edge in both orientations (the standard symmetrized form).
    let mut e = [[0.0f64; 2]; 2];
    let mut total = 0.0f64;
    for (u, v) in g.edges() {
        let (a, b) = (attr[u] as usize, attr[v] as usize);
        e[a][b] += 1.0;
        e[b][a] += 1.0;
        total += 2.0;
    }
    if total == 0.0 {
        return 0.0;
    }
    for row in &mut e {
        for cell in row.iter_mut() {
            *cell /= total;
        }
    }
    // r = (Σᵢ eᵢᵢ − Σᵢ aᵢ bᵢ) / (1 − Σᵢ aᵢ bᵢ), with aᵢ = Σⱼ eᵢⱼ = bᵢ.
    let a0 = e[0][0] + e[0][1];
    let a1 = e[1][0] + e[1][1];
    let trace = e[0][0] + e[1][1];
    let expected = a0 * a0 + a1 * a1;
    if (1.0 - expected).abs() < 1e-12 {
        return 0.0; // constant attribute
    }
    (trace - expected) / (1.0 - expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn density_known() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        assert_eq!(density(&g), 3.0 / 6.0);
        assert_eq!(density(&GraphBuilder::new(1).build()), 0.0);
    }

    #[test]
    fn triangle_has_full_clustering() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 0)
            .build();
        assert_eq!(clustering_coefficient(&g, 0), 1.0);
        assert_eq!(average_clustering(&g), 1.0);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build();
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn square_with_diagonal_clustering() {
        // 4-cycle + diagonal 0–2: node 0 sees neighbours {1, 2, 3} with the
        // pairs (1,2) and (2,3) closed — 2 of 3; node 1 sees {0, 2}, closed.
        let g = GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .edge(3, 0)
            .edge(0, 2)
            .build();
        assert!((clustering_coefficient(&g, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((clustering_coefficient(&g, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_perfectly_segregated() {
        // Two disjoint edges, one per group.
        let g = GraphBuilder::new(4).edge(0, 1).edge(2, 3).build();
        let attr = [false, false, true, true];
        assert!((sensitive_assortativity(&g, &attr) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_bipartite_is_minus_one() {
        // Every edge crosses groups.
        let g = GraphBuilder::new(4)
            .edge(0, 2)
            .edge(0, 3)
            .edge(1, 2)
            .edge(1, 3)
            .build();
        let attr = [false, false, true, true];
        assert!((sensitive_assortativity(&g, &attr) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn assortativity_random_mixing_near_zero() {
        use rand::Rng;
        let mut rng = fairwos_tensor::seeded_rng(0);
        let n = 600;
        let attr: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let g = crate::generate::erdos_renyi(n, 0.02, &mut rng);
        let r = sensitive_assortativity(&g, &attr);
        assert!(
            r.abs() < 0.05,
            "assortativity {r} should be ~0 for ER mixing"
        );
    }

    #[test]
    fn assortativity_degenerate_cases() {
        let empty = GraphBuilder::new(3).build();
        assert_eq!(sensitive_assortativity(&empty, &[true, false, true]), 0.0);
        let g = GraphBuilder::new(2).edge(0, 1).build();
        // Constant attribute ⇒ 0 by convention.
        assert_eq!(sensitive_assortativity(&g, &[true, true]), 0.0);
    }

    #[test]
    fn assortativity_tracks_sbm_homophily() {
        use fairwos_tensor::seeded_rng;
        let mut rng = seeded_rng(1);
        let attr: Vec<bool> = (0..400).map(|i| i % 2 == 0).collect();
        let strong = crate::generate::sensitive_sbm(&attr, 0.05, 0.005, &mut rng);
        let weak = crate::generate::sensitive_sbm(&attr, 0.03, 0.02, &mut rng);
        let r_strong = sensitive_assortativity(&strong, &attr);
        let r_weak = sensitive_assortativity(&weak, &attr);
        assert!(r_strong > r_weak, "{r_strong} vs {r_weak}");
        assert!(r_strong > 0.6);
    }
}
