//! General sparse matrix in CSR form with `f32` values, and its
//! sparse–dense products (SPMM).

use fairwos_tensor::checked::{contract_finite, contract_finite_slice};
use fairwos_tensor::Matrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A sparse `rows × cols` matrix in CSR form.
///
/// Used for normalized adjacencies: the GCN propagation `Â·X` and its
/// backward pass `Âᵀ·dH` are both [`CsrMatrix::spmm`] calls (for the
/// symmetric `Â` the transpose is free; [`CsrMatrix::transpose`] exists for
/// the general case).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds from COO triplets. Entries must not repeat (adjacency
    /// construction guarantees this); order is arbitrary.
    ///
    /// # Panics
    /// If any triplet indexes outside `rows × cols`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut deg = vec![0usize; rows];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "entry ({r},{c}) out of {rows}x{cols}");
            deg[r] += 1;
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for r in 0..rows {
            row_ptr[r + 1] = row_ptr[r] + deg[r];
        }
        let nnz = row_ptr[rows];
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = row_ptr.clone();
        for &(r, c, v) in triplets {
            col_idx[cursor[r]] = c;
            values[cursor[r]] = v;
            cursor[r] += 1;
        }
        // Sort each row by column for deterministic iteration.
        for r in 0..rows {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            let mut pairs: Vec<(usize, f32)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            for (i, (c, v)) in pairs.into_iter().enumerate() {
                col_idx[lo + i] = c;
                values[lo + i] = v;
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The `n × n` identity as CSR.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<(usize, usize, f32)> = (0..n).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, n, &triplets)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `r` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&[usize], &[f32]) {
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Reads entry `(r, c)`, 0.0 when absent.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Sparse–dense product `self · dense`.
    ///
    /// The GCN forward propagation. Parallelises over output rows.
    ///
    /// # Panics
    /// If `self.cols() != dense.rows()`. With `--features checked` in a
    /// debug build, also if an operand or the output contains NaN/Inf.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, dense.cols());
        self.spmm_into(dense, &mut out);
        out
    }

    /// Sparse–dense product `self · dense`, written into `out` (any
    /// previous contents of `out` are overwritten). In-place twin of
    /// [`CsrMatrix::spmm`] for allocation-free hot loops.
    ///
    /// # Panics
    /// If `self.cols() != dense.rows()` or `out` is not
    /// `self.rows() × dense.cols()`. With `--features checked` in a debug
    /// build, also if an operand or the output contains NaN/Inf.
    pub fn spmm_into(&self, dense: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm: sparse {}x{} · dense {}x{}",
            self.rows,
            self.cols,
            dense.rows(),
            dense.cols()
        );
        assert_eq!(
            out.shape(),
            (self.rows, dense.cols()),
            "spmm: output buffer is {}x{}, expected {}x{}",
            out.rows(),
            out.cols(),
            self.rows,
            dense.cols()
        );
        contract_finite_slice("spmm", "sparse values", &self.values);
        contract_finite("spmm", "dense", dense);
        let d = dense.cols();
        fairwos_obs::counter_add("graph/spmm/fma", (self.nnz() * d) as u64);
        out.as_mut_slice().fill(0.0);
        let body = |(r, out_row): (usize, &mut [f32])| {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let src = dense.row(c);
                for (o, &s) in out_row.iter_mut().zip(src) {
                    *o += v * s;
                }
            }
        };
        if self.nnz() * d >= 1 << 16 {
            out.as_mut_slice()
                .par_chunks_mut(d)
                .enumerate()
                .for_each(body);
        } else {
            out.as_mut_slice().chunks_mut(d).enumerate().for_each(body);
        }
        contract_finite("spmm", "output", out);
    }

    /// The transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// True if the matrix equals its transpose within `tol` (the normalized
    /// adjacency of an undirected graph must be).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Densifies (test/debug helper; quadratic memory).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(r, c, v);
            }
        }
        m
    }

    /// Per-row sums of stored values.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|r| self.row(r).1.iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairwos_tensor::approx_eq;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 3.0), (2, 2, 1.0), (0, 2, 4.0)])
    }

    #[test]
    fn spmm_into_overwrites_dirty_buffer() {
        let s = sample();
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let mut out = Matrix::full(3, 2, f32::MAX);
        s.spmm_into(&x, &mut out);
        assert_eq!(out, s.spmm(&x));
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(0, 0), 0.0);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 2]); // sorted by column
        assert_eq!(vals, &[2.0, 4.0]);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(4);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        assert_eq!(i.spmm(&x), x);
    }

    #[test]
    fn spmm_matches_dense() {
        let s = sample();
        let x = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, 1.5], &[3.0, 2.5]]);
        let sparse_result = s.spmm(&x);
        let dense_result = s.to_dense().matmul(&x);
        for (a, b) in sparse_result.as_slice().iter().zip(dense_result.as_slice()) {
            assert!(approx_eq(*a, *b, 1e-5));
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let s = sample();
        assert_eq!(s.transpose().transpose(), s);
        assert_eq!(s.transpose().get(1, 0), 2.0);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        assert!(sym.is_symmetric(1e-6));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-6));
        let rect = CsrMatrix::from_triplets(2, 3, &[]);
        assert!(!rect.is_symmetric(1e-6));
    }

    #[test]
    fn row_sums() {
        let s = sample();
        assert_eq!(s.row_sums(), vec![6.0, 3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn from_triplets_rejects_out_of_range() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]);
    }
}
