//! Lazily-built, epoch-persistent normalized adjacency matrices.
//!
//! Every GNN backbone propagates with a different normalization of the same
//! graph (GCN: `Â`, GIN: `A`, SAGE: `D⁻¹A` and its transpose). Building all
//! of them eagerly wastes both time and memory — a GCN run never touches the
//! mean-aggregation matrices. [`AdjacencyCache`] builds each CSR on first
//! access and then serves the same instance for the lifetime of the cache,
//! i.e. across every epoch of a training run.

use std::sync::OnceLock;

use crate::{gcn_normalized_adjacency, row_normalized_adjacency, sum_adjacency, CsrMatrix, Graph};

/// Per-graph cache of the normalized adjacencies used by the GNN layers.
///
/// Each matrix is computed at most once (on first access, thread-safe) and
/// kept for the lifetime of the cache, so the sparse structure is shared
/// across all epochs of training instead of being rebuilt.
#[derive(Debug)]
pub struct AdjacencyCache {
    graph: Graph,
    gcn: OnceLock<CsrMatrix>,
    sum: OnceLock<CsrMatrix>,
    mean: OnceLock<CsrMatrix>,
    mean_t: OnceLock<CsrMatrix>,
}

impl AdjacencyCache {
    /// A cache over a clone of `g` with no adjacency built yet.
    pub fn new(g: &Graph) -> Self {
        AdjacencyCache {
            graph: g.clone(),
            gcn: OnceLock::new(),
            sum: OnceLock::new(),
            mean: OnceLock::new(),
            mean_t: OnceLock::new(),
        }
    }

    /// A cache whose four propagation matrices are already built —
    /// used by the mini-batch path, which *restricts* the full graph's
    /// normalized matrices to a sampled subgraph instead of renormalizing
    /// (see `fairwos_graph::sampling::SubgraphSample::restrict`).
    pub fn with_prebuilt(
        graph: Graph,
        gcn: CsrMatrix,
        sum: CsrMatrix,
        mean: CsrMatrix,
        mean_t: CsrMatrix,
    ) -> Self {
        let cache = AdjacencyCache {
            graph,
            gcn: OnceLock::new(),
            sum: OnceLock::new(),
            mean: OnceLock::new(),
            mean_t: OnceLock::new(),
        };
        let _ = cache.gcn.set(gcn);
        let _ = cache.sum.set(sum);
        let _ = cache.mean.set(mean);
        let _ = cache.mean_t.set(mean_t);
        cache
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Symmetrically normalized adjacency `Â = D̃^{-1/2}(A+I)D̃^{-1/2}`
    /// (GCN propagation), built on first access.
    pub fn gcn(&self) -> &CsrMatrix {
        self.gcn
            .get_or_init(|| gcn_normalized_adjacency(&self.graph))
    }

    /// Plain adjacency `A` (GIN sum aggregation), built on first access.
    pub fn sum(&self) -> &CsrMatrix {
        self.sum.get_or_init(|| sum_adjacency(&self.graph))
    }

    /// Row-normalized adjacency `D⁻¹A` (mean aggregation), built on first
    /// access.
    pub fn mean(&self) -> &CsrMatrix {
        self.mean
            .get_or_init(|| row_normalized_adjacency(&self.graph))
    }

    /// Transpose of [`AdjacencyCache::mean`] (needed by SAGE's backward
    /// pass: `D⁻¹A` is not symmetric), built on first access.
    pub fn mean_t(&self) -> &CsrMatrix {
        self.mean_t.get_or_init(|| self.mean().transpose())
    }

    /// Eagerly builds all four propagation matrices.
    ///
    /// Training never calls this — laziness is the point of the cache. The
    /// serving layer does: it warms the cache once at startup so that no
    /// query (and no hot-reloaded model, whatever backbone its config
    /// names) ever pays a lazy CSR build on the request path.
    pub fn warm_all(&self) {
        let _s = fairwos_obs::span("graph/adjacency/warm");
        let _ = self.gcn();
        let _ = self.sum();
        let _ = self.mean();
        let _ = self.mean_t();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph() -> Graph {
        GraphBuilder::new(4)
            .edge(0, 1)
            .edge(1, 2)
            .edge(2, 3)
            .build()
    }

    #[test]
    fn lazily_built_matrices_match_direct_construction() {
        let g = path_graph();
        let cache = AdjacencyCache::new(&g);
        assert_eq!(cache.gcn(), &gcn_normalized_adjacency(&g));
        assert_eq!(cache.sum(), &sum_adjacency(&g));
        assert_eq!(cache.mean(), &row_normalized_adjacency(&g));
        assert_eq!(cache.mean_t(), &row_normalized_adjacency(&g).transpose());
    }

    #[test]
    fn repeated_access_returns_the_same_instance() {
        let cache = AdjacencyCache::new(&path_graph());
        let a = cache.gcn() as *const CsrMatrix;
        let b = cache.gcn() as *const CsrMatrix;
        assert_eq!(a, b);
    }
}
