//! Property-based tests for the graph substrate.

use fairwos_graph::{gcn_normalized_adjacency, generate, traversal, CsrMatrix, Graph, GraphBuilder};
use fairwos_tensor::{approx_eq, seeded_rng, Matrix};
use proptest::prelude::*;

/// Strategy: a random graph from an edge list over n nodes.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(edges);
            b.build()
        })
    })
}

proptest! {
    #[test]
    fn csr_adjacency_is_symmetric(g in graph_strategy()) {
        for u in 0..g.num_nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "missing reverse arc {v}->{u}");
                prop_assert_ne!(u, v, "self-loop survived build");
            }
        }
    }

    #[test]
    fn neighbor_lists_sorted_and_deduped(g in graph_strategy()) {
        for u in 0..g.num_nodes() {
            let ns = g.neighbors(u);
            for w in ns.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted or duplicate neighbour");
            }
        }
    }

    #[test]
    fn handshake_lemma(g in graph_strategy()) {
        let total: usize = (0..g.num_nodes()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn edges_iter_matches_num_edges(g in graph_strategy()) {
        prop_assert_eq!(g.edges().count(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn gcn_norm_invariants(g in graph_strategy()) {
        let a = gcn_normalized_adjacency(&g);
        prop_assert!(a.is_symmetric(1e-5));
        // Every diagonal entry present (self-loops), all values in (0, 1].
        for v in 0..g.num_nodes() {
            let d = a.get(v, v);
            prop_assert!(d > 0.0 && d <= 1.0);
        }
        // Â is an ℓ2 contraction (eigenvalues in (-1, 1]).
        let x = Matrix::rand_uniform(g.num_nodes(), 1, -1.0, 1.0, &mut seeded_rng(1));
        let y = a.spmm(&x);
        prop_assert!(y.frobenius_norm() <= x.frobenius_norm() * (1.0 + 1e-4));
    }

    #[test]
    fn spmm_matches_dense_reference(g in graph_strategy(), seed in 0u64..100) {
        let a = gcn_normalized_adjacency(&g);
        let x = Matrix::rand_uniform(g.num_nodes(), 4, -1.0, 1.0, &mut seeded_rng(seed));
        let sparse = a.spmm(&x);
        let dense = a.to_dense().matmul(&x);
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            prop_assert!(approx_eq(*s, *d, 1e-4));
        }
    }

    #[test]
    fn csr_transpose_involution(g in graph_strategy()) {
        let a = gcn_normalized_adjacency(&g);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn khop_is_monotone_in_k(g in graph_strategy(), k in 0usize..4) {
        let src = 0;
        let inner = traversal::khop_nodes(&g, src, k);
        let outer = traversal::khop_nodes(&g, src, k + 1);
        let outer_set: std::collections::HashSet<_> = outer.iter().collect();
        prop_assert!(inner.iter().all(|v| outer_set.contains(v)));
        prop_assert!(inner.contains(&src));
    }

    #[test]
    fn khop_respects_bfs_distance(g in graph_strategy(), k in 0usize..4) {
        let dist = traversal::bfs_distances(&g, 0);
        let nodes = traversal::khop_nodes(&g, 0, k);
        let set: std::collections::HashSet<_> = nodes.into_iter().collect();
        for (v, &dv) in dist.iter().enumerate() {
            prop_assert_eq!(set.contains(&v), dv <= k, "node {} dist {}", v, dv);
        }
    }

    #[test]
    fn components_partition_nodes(g in graph_strategy()) {
        let (count, labels) = traversal::connected_components(&g);
        prop_assert!(labels.iter().all(|&l| l < count));
        // Edge endpoints share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
    }

    #[test]
    fn induced_subgraph_edge_subset(g in graph_strategy()) {
        let half: Vec<usize> = (0..g.num_nodes()).step_by(2).collect();
        let (sub, map) = g.induced_subgraph(&half);
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u], map[v]));
        }
    }

    #[test]
    fn sbm_graph_is_valid(seed in 0u64..50, n in 10usize..80) {
        let sens: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let g = generate::sensitive_sbm(&sens, 0.2, 0.05, &mut seeded_rng(seed));
        prop_assert_eq!(g.num_nodes(), n);
        let h = generate::sensitive_homophily(&g, &sens);
        prop_assert!((0.0..=1.0).contains(&h));
    }

    #[test]
    fn csr_from_triplets_get_roundtrip(entries in prop::collection::vec((0usize..8, 0usize..8, -5.0f32..5.0), 0..20)) {
        // Dedup (r,c) keys first: from_triplets requires unique entries.
        let mut seen = std::collections::HashSet::new();
        let unique: Vec<_> = entries.into_iter().filter(|&(r, c, _)| seen.insert((r, c))).collect();
        let m = CsrMatrix::from_triplets(8, 8, &unique);
        prop_assert_eq!(m.nnz(), unique.len());
        for (r, c, v) in unique {
            prop_assert_eq!(m.get(r, c), v);
        }
    }
}
