//! `checked`-feature contract tests for the SPMM kernel, mirroring
//! `crates/tensor/tests/checked_contracts.rs`: a non-finite value in any
//! operand must panic naming the kernel (`spmm`) and the operand role.
//!
//! Run with `cargo test -p fairwos-graph --features checked`. The contract
//! is active only in debug builds; without the feature the non-panicking
//! test confirms the no-op path.

use fairwos_graph::CsrMatrix;
use fairwos_tensor::Matrix;

fn sparse_2x3() -> CsrMatrix {
    CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
}

fn nan_sparse_2x3() -> CsrMatrix {
    CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, f32::NAN), (1, 1, 3.0)])
}

fn nan_dense(rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::ones(rows, cols);
    m.as_mut_slice()[0] = f32::NAN;
    m
}

#[test]
fn finite_inputs_never_trip_the_contract() {
    let out = sparse_2x3().spmm(&Matrix::ones(3, 2));
    assert_eq!(out.get(0, 0), 3.0);
    assert_eq!(out.get(1, 1), 3.0);
}

#[cfg(all(feature = "checked", debug_assertions))]
mod active {
    use super::*;

    #[test]
    #[should_panic(expected = "op `spmm`: sparse values has non-finite value NaN")]
    fn nan_in_sparse_values_names_kernel_and_role() {
        let _ = nan_sparse_2x3().spmm(&Matrix::ones(3, 2));
    }

    #[test]
    #[should_panic(expected = "op `spmm`: dense has non-finite value NaN")]
    fn nan_in_dense_operand_names_kernel_and_role() {
        let _ = sparse_2x3().spmm(&nan_dense(3, 2));
    }

    #[test]
    #[should_panic(expected = "op `spmm`")]
    fn infinity_is_caught_like_nan() {
        let mut dense = Matrix::ones(3, 2);
        dense.as_mut_slice()[5] = f32::INFINITY;
        let _ = sparse_2x3().spmm(&dense);
    }

    #[test]
    #[should_panic(expected = "op `spmm`: output has non-finite value")]
    fn overflow_in_the_product_is_attributed_to_the_output() {
        // Finite operands whose product overflows f32: the contract must
        // blame spmm's output, not wait for a downstream consumer.
        let s = CsrMatrix::from_triplets(1, 1, &[(0, 0, f32::MAX)]);
        let dense = Matrix::full(1, 1, f32::MAX);
        let _ = s.spmm(&dense);
    }
}

#[cfg(not(all(feature = "checked", debug_assertions)))]
mod inactive {
    use super::*;

    #[test]
    fn contracts_compile_to_nothing_without_the_feature() {
        // NaN flows through silently — the documented release behavior.
        let out = nan_sparse_2x3().spmm(&Matrix::ones(3, 2));
        assert!(out.get(0, 0).is_nan());
    }
}
