//! Property-based sparse/dense equivalence for the SPMM kernels.
//!
//! `CsrMatrix::spmm` is the GCN propagation — if it disagrees with the
//! dense reference product, every forward and backward pass in the
//! workspace is silently wrong. Random COO matrices (duplicate-free, as
//! adjacency construction guarantees) are multiplied both ways and
//! compared within 1e-5, including through `transpose()` and on inputs
//! large enough to take the rayon parallel path.

use fairwos_graph::CsrMatrix;
use fairwos_tensor::{approx_eq, seeded_rng, Matrix};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A random sparse matrix (as deduped COO triplets) and a compatible dense
/// right-hand side.
fn spmm_case() -> impl Strategy<Value = (CsrMatrix, Matrix)> {
    (1usize..16, 1usize..16, 1usize..7).prop_flat_map(|(rows, cols, d)| {
        let triplets = prop::collection::vec(
            (0..rows, 0..cols, -10.0f32..10.0),
            0..rows * cols,
        )
        .prop_map(move |raw| {
            // from_triplets forbids repeated (r,c) entries; keep the last.
            let dedup: BTreeMap<(usize, usize), f32> =
                raw.into_iter().map(|(r, c, v)| ((r, c), v)).collect();
            let flat: Vec<(usize, usize, f32)> =
                dedup.into_iter().map(|((r, c), v)| (r, c, v)).collect();
            CsrMatrix::from_triplets(rows, cols, &flat)
        });
        let dense = prop::collection::vec(-10.0f32..10.0, cols * d)
            .prop_map(move |data| Matrix::from_vec(cols, d, data));
        (triplets, dense)
    })
}

fn assert_matrices_close(sparse_result: &Matrix, dense_result: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(sparse_result.shape(), dense_result.shape());
    for (i, (a, b)) in
        sparse_result.as_slice().iter().zip(dense_result.as_slice()).enumerate()
    {
        prop_assert!(approx_eq(*a, *b, 1e-5), "entry {i}: sparse {a} vs dense {b}");
    }
    Ok(())
}

proptest! {
    #[test]
    fn spmm_equals_dense_matmul((s, x) in spmm_case()) {
        assert_matrices_close(&s.spmm(&x), &s.to_dense().matmul(&x))?;
    }

    #[test]
    fn transposed_spmm_equals_dense_transposed_product((s, _) in spmm_case()) {
        // Build an RHS compatible with sᵀ (rows(s) tall).
        let d = 3;
        let mut rng = seeded_rng(7);
        use rand::Rng;
        let data: Vec<f32> = (0..s.rows() * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let x = Matrix::from_vec(s.rows(), d, data);
        assert_matrices_close(
            &s.transpose().spmm(&x),
            &s.to_dense().transpose().matmul(&x),
        )?;
    }

    #[test]
    fn spmm_then_transpose_roundtrip_preserves_shape((s, x) in spmm_case()) {
        let y = s.spmm(&x);
        prop_assert_eq!(y.rows(), s.rows());
        prop_assert_eq!(y.cols(), x.cols());
        let yt = s.transpose().spmm(&y);
        prop_assert_eq!(yt.rows(), s.cols());
    }
}

#[test]
fn parallel_path_matches_dense() {
    // nnz × d must clear the 1<<16 threshold in `spmm` so the rayon branch
    // runs; proptest's small cases never reach it.
    let n = 400;
    let d = 32;
    let mut rng = seeded_rng(3);
    use rand::Rng;
    let mut triplets = Vec::new();
    for r in 0..n {
        for _ in 0..8 {
            let c = rng.gen_range(0..n);
            triplets.push((r, c, rng.gen_range(-1.0f32..1.0)));
        }
    }
    let dedup: BTreeMap<(usize, usize), f32> =
        triplets.into_iter().map(|(r, c, v)| ((r, c), v)).collect();
    let flat: Vec<(usize, usize, f32)> =
        dedup.into_iter().map(|((r, c), v)| (r, c, v)).collect();
    let s = CsrMatrix::from_triplets(n, n, &flat);
    let data: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let x = Matrix::from_vec(n, d, data);
    assert!(s.nnz() * d >= 1 << 16, "case too small to exercise the parallel path");

    let sparse_result = s.spmm(&x);
    let dense_result = s.to_dense().matmul(&x);
    for (a, b) in sparse_result.as_slice().iter().zip(dense_result.as_slice()) {
        assert!(approx_eq(*a, *b, 1e-5), "parallel spmm drifted: {a} vs {b}");
    }
}
