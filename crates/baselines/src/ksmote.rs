//! `KSMOTE` (Yan, Kao & Ferrara, CIKM 2020): discovers *pseudo-groups* by
//! clustering the (non-sensitive) features, then regularizes the model so
//! predictions are balanced across the pseudo-groups.
//!
//! Following the paper (§V-A3), the method — designed for i.i.d. data — is
//! applied on top of our backbone GNN: k-means provides the groups, and a
//! group-mean-logit parity penalty provides the fairness pressure.

use crate::common::{predict_probs, train_gnn, TrainOpts};
use fairwos_analysis::kmeans;
use fairwos_core::{FairMethod, TrainInput};
use fairwos_nn::Backbone;
use fairwos_tensor::{seeded_rng, Matrix};

/// Cluster-then-regularize baseline.
pub struct KSmote {
    opts: TrainOpts,
    /// Number of pseudo-groups (clusters).
    pub k: usize,
    /// Weight of the parity regularizer.
    pub gamma: f32,
}

impl KSmote {
    /// KSMOTE with the common configuration (k = 2 pseudo-groups mirroring a
    /// binary sensitive attribute, moderate regularization).
    pub fn new(backbone: Backbone) -> Self {
        Self { opts: TrainOpts::default_for(backbone), k: 2, gamma: 1.0 }
    }

    /// KSMOTE with explicit knobs.
    ///
    /// # Panics
    /// If `k < 2`.
    pub fn with_params(opts: TrainOpts, k: usize, gamma: f32) -> Self {
        assert!(k >= 2, "need at least 2 pseudo-groups");
        Self { opts, k, gamma }
    }
}

/// The parity penalty `γ Σ_c (m_c − m̄)²` over mean logits per pseudo-group
/// (train nodes only) and its gradient w.r.t. the logits.
fn group_parity_penalty(
    logits: &Matrix,
    groups: &[usize],
    train: &[usize],
    k: usize,
    gamma: f32,
) -> (f32, Matrix) {
    let mut sums = vec![0.0f32; k];
    let mut counts = vec![0usize; k];
    for &v in train {
        sums[groups[v]] += logits.get(v, 0);
        counts[groups[v]] += 1;
    }
    let n_total: usize = counts.iter().sum();
    let grand_mean = sums.iter().sum::<f32>() / n_total.max(1) as f32;
    let means: Vec<f32> =
        sums.iter().zip(&counts).map(|(&s, &c)| if c == 0 { grand_mean } else { s / c as f32 }).collect();
    let loss: f32 = means.iter().map(|&m| (m - grand_mean).powi(2)).sum::<f32>() * gamma;

    // dL/dz_v = γ [ 2(m_c − m̄)/|c| − (1/N) Σ_{c'} 2(m_{c'} − m̄) ].
    let common: f32 = means.iter().map(|&m| 2.0 * (m - grand_mean)).sum::<f32>() / n_total.max(1) as f32;
    let mut grad = Matrix::zeros(logits.rows(), 1);
    for &v in train {
        let c = groups[v];
        if counts[c] > 0 {
            let g = gamma * (2.0 * (means[c] - grand_mean) / counts[c] as f32 - common);
            grad.set(v, 0, g);
        }
    }
    (loss, grad)
}

impl FairMethod for KSmote {
    fn name(&self) -> String {
        "KSMOTE".to_string()
    }

    fn fit_predict(&self, input: &TrainInput<'_>, seed: u64) -> Vec<f32> {
        input.assert_valid();
        // Pseudo-groups from feature clustering (no sensitive attribute).
        let mut rng = seeded_rng(seed ^ 0x5eed);
        let clusters = kmeans(input.features, self.k, 50, &mut rng);
        let groups = clusters.assignments;

        let k = self.k;
        let gamma = self.gamma;
        let train = input.train;
        let mut reg = move |logits: &Matrix| group_parity_penalty(logits, &groups, train, k, gamma);
        let (gnn, ctx, _) = train_gnn(
            input.graph,
            input.features,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed,
            Some(&mut reg),
        );
        predict_probs(&gnn, &ctx, input.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{dataset, input, test_accuracy};
    use fairwos_tensor::approx_eq;

    #[test]
    fn penalty_gradient_matches_finite_differences() {
        let logits = Matrix::from_rows(&[&[0.3], &[-0.5], &[1.2], &[0.1], &[0.9]]);
        let groups = [0usize, 1, 0, 1, 0];
        let train = [0usize, 1, 2, 3, 4];
        let (_, grad) = group_parity_penalty(&logits, &groups, &train, 2, 0.7);
        let eps = 1e-3;
        for v in 0..5 {
            let mut up = logits.clone();
            up.set(v, 0, logits.get(v, 0) + eps);
            let mut dn = logits.clone();
            dn.set(v, 0, logits.get(v, 0) - eps);
            let (lu, _) = group_parity_penalty(&up, &groups, &train, 2, 0.7);
            let (ld, _) = group_parity_penalty(&dn, &groups, &train, 2, 0.7);
            let fd = (lu - ld) / (2.0 * eps);
            assert!(approx_eq(fd, grad.get(v, 0), 1e-2), "node {v}: {fd} vs {}", grad.get(v, 0));
        }
    }

    #[test]
    fn penalty_zero_when_groups_balanced() {
        let logits = Matrix::from_rows(&[&[0.5], &[0.5], &[0.5], &[0.5]]);
        let groups = [0usize, 1, 0, 1];
        let train = [0usize, 1, 2, 3];
        let (loss, grad) = group_parity_penalty(&logits, &groups, &train, 2, 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.frobenius_norm(), 0.0);
    }

    #[test]
    fn ksmote_learns() {
        let ds = dataset();
        let probs = KSmote::new(Backbone::Gcn).fit_predict(&input(&ds), 0);
        assert!(test_accuracy(&ds, &probs) > 0.55);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(KSmote::new(Backbone::Gcn).name(), "KSMOTE");
    }

    #[test]
    #[should_panic(expected = "at least 2 pseudo-groups")]
    fn rejects_single_group() {
        let _ = KSmote::with_params(TrainOpts::default_for(Backbone::Gcn), 1, 1.0);
    }
}
