//! Shared training loop for the baseline methods.
//!
//! Every baseline is "backbone GNN + (optionally) a differentiable
//! regularizer on the logits"; this module provides that loop once, with
//! early stopping on validation accuracy and best-weights restoration.

use fairwos_fairness::accuracy;
use fairwos_nn::loss::{bce_with_logits_masked, sigmoid};
use fairwos_nn::{Adam, Backbone, Gnn, GnnConfig, GraphContext, Optimizer};
use fairwos_tensor::{seeded_rng, Matrix};

/// Architecture and schedule of one baseline training run.
#[derive(Clone, Debug)]
pub struct TrainOpts {
    /// Backbone flavour.
    pub backbone: Backbone,
    /// Hidden dimension (paper: 16).
    pub hidden_dim: usize,
    /// Conv layers (paper: 1).
    pub num_layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Early-stopping patience on validation accuracy.
    pub patience: usize,
}

impl TrainOpts {
    /// The paper's backbone setup with a CPU-friendly schedule.
    pub fn default_for(backbone: Backbone) -> Self {
        Self {
            backbone,
            hidden_dim: 16,
            num_layers: 1,
            epochs: 200,
            learning_rate: 1e-2,
            patience: 40,
        }
    }
}

/// A differentiable penalty on the full logits matrix: returns
/// `(loss, d loss / d logits)`. The trainer *adds* the gradient to the BCE
/// gradient before the backward pass.
pub type LogitRegularizer<'r> = dyn FnMut(&Matrix) -> (f32, Matrix) + 'r;

/// Trains a GNN with BCE + an optional logit regularizer; returns the model,
/// its graph context, and the per-epoch total losses.
///
/// # Panics
/// If `features` has a row count other than the node count, or `train` is
/// empty.
#[allow(clippy::too_many_arguments)]
pub fn train_gnn(
    graph: &fairwos_graph::Graph,
    features: &Matrix,
    labels: &[f32],
    train: &[usize],
    val: &[usize],
    opts: &TrainOpts,
    seed: u64,
    mut regularizer: Option<&mut LogitRegularizer<'_>>,
) -> (Gnn, GraphContext, Vec<f32>) {
    assert_eq!(features.rows(), graph.num_nodes(), "feature rows vs nodes");
    assert!(!train.is_empty(), "no training nodes");
    let mut rng = seeded_rng(seed);
    let ctx = GraphContext::new(graph);
    let mut gnn = Gnn::new(
        GnnConfig {
            backbone: opts.backbone,
            in_dim: features.cols(),
            hidden_dim: opts.hidden_dim,
            num_layers: opts.num_layers,
            dropout: 0.0,
        },
        &mut rng,
    );
    let mut opt = Adam::new(opts.learning_rate);
    let mut losses = Vec::with_capacity(opts.epochs);
    let mut best_val = f64::NEG_INFINITY;
    let mut best: Vec<Matrix> = Vec::new();
    let mut since_best = 0usize;
    for _ in 0..opts.epochs {
        gnn.zero_grad();
        let out = gnn.forward_train(&ctx, features, &mut rng);
        let (bce, mut dlogits) = bce_with_logits_masked(&out.logits, labels, train);
        let mut total = bce;
        if let Some(reg) = regularizer.as_deref_mut() {
            let (extra, dextra) = reg(&out.logits);
            total += extra;
            dlogits.add_assign(&dextra);
        }
        losses.push(total);
        gnn.backward(&ctx, &dlogits, None);
        opt.step(&mut gnn.params_mut());

        let val_acc = if val.is_empty() {
            -(total as f64)
        } else {
            let probs = sigmoid(&out.logits).col(0);
            let vp: Vec<f32> = val.iter().map(|&v| probs[v]).collect();
            let vl: Vec<f32> = val.iter().map(|&v| labels[v]).collect();
            accuracy(&vp, &vl)
        };
        if val_acc > best_val {
            best_val = val_acc;
            best = gnn.params_mut().iter().map(|p| p.value.clone()).collect();
            since_best = 0;
        } else {
            since_best += 1;
            if since_best >= opts.patience {
                break;
            }
        }
    }
    if !best.is_empty() {
        for (p, saved) in gnn.params_mut().into_iter().zip(&best) {
            p.value = saved.clone();
        }
    }
    (gnn, ctx, losses)
}

/// `P(y = 1)` for every node from a trained model.
pub fn predict_probs(gnn: &Gnn, ctx: &GraphContext, features: &Matrix) -> Vec<f32> {
    sigmoid(&gnn.forward_inference(ctx, features).logits).col(0)
}

#[cfg(test)]
pub(crate) mod test_support {
    use fairwos_core::TrainInput;
    use fairwos_datasets::{DatasetSpec, FairGraphDataset};

    /// A small but realistic biased dataset shared by the baseline tests.
    pub fn dataset() -> FairGraphDataset {
        FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.5), 11)
    }

    pub fn input(ds: &FairGraphDataset) -> TrainInput<'_> {
        TrainInput {
            graph: &ds.graph,
            features: &ds.features,
            labels: &ds.labels,
            train: &ds.split.train,
            val: &ds.split.val,
        }
    }

    /// Test-set accuracy of full-graph probability predictions.
    pub fn test_accuracy(ds: &FairGraphDataset, probs: &[f32]) -> f64 {
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let tl = ds.labels_of(&ds.split.test);
        fairwos_fairness::accuracy(&tp, &tl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::{dataset, test_accuracy};

    #[test]
    fn plain_training_learns() {
        let ds = dataset();
        let opts = TrainOpts::default_for(Backbone::Gcn);
        let (gnn, ctx, losses) = train_gnn(
            &ds.graph,
            &ds.features,
            &ds.labels,
            &ds.split.train,
            &ds.split.val,
            &opts,
            0,
            None,
        );
        assert!(losses.last().unwrap() < &losses[0]);
        let probs = predict_probs(&gnn, &ctx, &ds.features);
        assert!(test_accuracy(&ds, &probs) > 0.6);
    }

    #[test]
    fn regularizer_gradient_is_applied() {
        // A regularizer that pushes all logits toward −∞ (constant positive
        // gradient) must visibly drag predictions down vs. the plain run.
        let ds = dataset();
        let opts = TrainOpts { epochs: 60, patience: 60, ..TrainOpts::default_for(Backbone::Gcn) };
        let (gnn_plain, ctx, _) = train_gnn(
            &ds.graph, &ds.features, &ds.labels, &ds.split.train, &ds.split.val, &opts, 1, None,
        );
        let mut push_down = |logits: &Matrix| -> (f32, Matrix) {
            (logits.sum(), Matrix::full(logits.rows(), logits.cols(), 0.05))
        };
        let (gnn_reg, ctx2, _) = train_gnn(
            &ds.graph,
            &ds.features,
            &ds.labels,
            &ds.split.train,
            &[], // no early stop interference
            &opts,
            1,
            Some(&mut push_down),
        );
        let mean_plain: f32 =
            predict_probs(&gnn_plain, &ctx, &ds.features).iter().sum::<f32>() / ds.num_nodes() as f32;
        let mean_reg: f32 =
            predict_probs(&gnn_reg, &ctx2, &ds.features).iter().sum::<f32>() / ds.num_nodes() as f32;
        assert!(mean_reg < mean_plain, "regularizer had no effect: {mean_reg} vs {mean_plain}");
    }
}
