//! The baselines of the Fairwos evaluation (paper §V-A3) — all methods that
//! learn fair(er) classifiers **without** sensitive attributes:
//!
//! | Method | Idea | Module |
//! |---|---|---|
//! | `Vanilla\S` | the raw backbone GNN | [`Vanilla`] |
//! | `RemoveR` | drop all candidate-related attributes, then train | [`RemoveR`] |
//! | `KSMOTE` (Yan et al. 2020) | k-means pseudo-groups + prediction-parity regularizer | [`KSmote`] |
//! | `FairRF` (Zhao et al. 2022) | minimize correlation between predictions and related features | [`FairRF`] |
//! | `FairGKD\S` (Zhu et al. 2024) | distill a student from two partial teachers (features-only MLP, structure-only GNN) | [`FairGkd`] |
//!
//! Every baseline implements [`fairwos_core::FairMethod`], so the experiment
//! harness runs them and Fairwos through the same entry point.
//!
//! KSMOTE and FairRF were designed for i.i.d. data; following the paper
//! ("we directly use the code provided by \[24\], \[38\] on our backbone GNN"),
//! their regularizers are applied to a GNN backbone here.

mod common;
mod fairgkd;
mod fairrf;
mod ksmote;
mod remove_r;
mod vanilla;

pub use common::{train_gnn, LogitRegularizer, TrainOpts};
pub use fairgkd::FairGkd;
pub use fairrf::FairRF;
pub use ksmote::KSmote;
pub use remove_r::RemoveR;
pub use vanilla::Vanilla;
