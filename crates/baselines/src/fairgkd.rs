//! `FairGKD\S` (Zhu, Li, Chen & Zheng, WSDM 2024): fairness via *partial*
//! knowledge distillation. Two teachers are each trained on partial data —
//! one sees only the node features (an MLP, blind to the biased structure),
//! one sees only the structure (a GNN over structural encodings, blind to
//! the biased features) — and a student GNN is distilled from their averaged
//! predictions alongside the task loss.
//!
//! Because neither teacher observes both bias channels at once, their
//! synthesized knowledge is less bias-aligned than end-to-end training.
//! Training three models is also why FairGKD is the slowest method in the
//! paper's Fig. 8 — a profile this implementation reproduces.

use crate::common::{predict_probs, train_gnn, TrainOpts};
use fairwos_core::{FairMethod, TrainInput};
use fairwos_nn::loss::bce_with_logits_masked;
use fairwos_nn::{Adam, Backbone, Linear, Optimizer, Relu};
use fairwos_tensor::{seeded_rng, Matrix};

/// Partial-knowledge-distillation baseline.
pub struct FairGkd {
    opts: TrainOpts,
    /// Distillation weight.
    pub gamma: f32,
}

impl FairGkd {
    /// FairGKD on the given backbone with the default distillation weight.
    pub fn new(backbone: Backbone) -> Self {
        Self { opts: TrainOpts::default_for(backbone), gamma: 0.5 }
    }

    /// FairGKD with explicit knobs.
    pub fn with_params(opts: TrainOpts, gamma: f32) -> Self {
        Self { opts, gamma }
    }
}

/// The feature-only teacher: a 2-layer MLP trained with BCE on the labeled
/// nodes. Returns its logits for every node.
fn train_feature_teacher(
    features: &Matrix,
    labels: &[f32],
    train: &[usize],
    hidden: usize,
    epochs: usize,
    lr: f32,
    seed: u64,
) -> Matrix {
    let mut rng = seeded_rng(seed);
    let mut fc1 = Linear::new_he(features.cols(), hidden, &mut rng);
    let mut relu = Relu::new();
    let mut fc2 = Linear::new(hidden, 1, &mut rng);
    let mut opt = Adam::new(lr);
    for _ in 0..epochs {
        fc1.zero_grad();
        fc2.zero_grad();
        let h = relu.forward(&fc1.forward(features));
        let logits = fc2.forward(&h);
        let (_, dlogits) = bce_with_logits_masked(&logits, labels, train);
        let dh = relu.backward(&fc2.backward(&dlogits));
        let _ = fc1.backward(&dh);
        let mut params = fc1.params_mut();
        params.extend(fc2.params_mut());
        opt.step(&mut params);
    }
    let h = fc1.forward_inference(features).map(|v| v.max(0.0));
    fc2.forward_inference(&h)
}

/// Structural encodings for the structure-only teacher: a constant channel
/// plus log-degree (standardized). The teacher sees topology, not the
/// (bias-carrying) feature matrix.
fn structural_features(graph: &fairwos_graph::Graph) -> Matrix {
    let n = graph.num_nodes();
    let mut x = Matrix::zeros(n, 2);
    for v in 0..n {
        x.set(v, 0, 1.0);
        x.set(v, 1, ((graph.degree(v) + 1) as f32).ln());
    }
    x.standardize_cols_assign();
    x
}

impl FairMethod for FairGkd {
    fn name(&self) -> String {
        "FairGKD\\S".to_string()
    }

    fn fit_predict(&self, input: &TrainInput<'_>, seed: u64) -> Vec<f32> {
        input.assert_valid();

        // Teacher 1: features only.
        let t_feat = train_feature_teacher(
            input.features,
            input.labels,
            input.train,
            self.opts.hidden_dim,
            self.opts.epochs,
            self.opts.learning_rate,
            seed ^ 0xfeed,
        );

        // Teacher 2: structure only.
        let struct_x = structural_features(input.graph);
        let (t_gnn, t_ctx, _) = train_gnn(
            input.graph,
            &struct_x,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed ^ 0x57fc,
            None,
        );
        let t_struct = t_gnn.forward_inference(&t_ctx, &struct_x).logits;

        // Synthesized teacher knowledge: averaged logits.
        let mut teacher = t_feat;
        teacher.add_assign(&t_struct);
        teacher.scale_assign(0.5);

        // Student: full data + distillation toward the teacher on all nodes.
        let gamma = self.gamma;
        let n = input.graph.num_nodes() as f32;
        let mut distill = move |logits: &Matrix| -> (f32, Matrix) {
            let mut diff = logits.clone();
            diff.sub_assign(&teacher);
            let loss = gamma * diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n;
            diff.scale_assign(2.0 * gamma / n);
            (loss, diff)
        };
        let (gnn, ctx, _) = train_gnn(
            input.graph,
            input.features,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed,
            Some(&mut distill),
        );
        predict_probs(&gnn, &ctx, input.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{dataset, input, test_accuracy};

    #[test]
    fn feature_teacher_learns_separable_task() {
        let mut x = Matrix::zeros(20, 3);
        let mut labels = vec![0.0f32; 20];
        let mut rng = seeded_rng(0);
        use rand::Rng;
        for (i, label) in labels.iter_mut().enumerate() {
            let y = (i % 2) as f32;
            *label = y;
            for j in 0..3 {
                x.set(i, j, (y * 2.0 - 1.0) + rng.gen_range(-0.3..0.3));
            }
        }
        let train: Vec<usize> = (0..20).collect();
        let logits = train_feature_teacher(&x, &labels, &train, 8, 150, 0.05, 1);
        for (i, &label) in labels.iter().enumerate() {
            assert_eq!((logits.get(i, 0) > 0.0) as usize as f32, label, "node {i}");
        }
    }

    #[test]
    fn structural_features_standardized() {
        use fairwos_graph::GraphBuilder;
        let g = GraphBuilder::new(4).edge(0, 1).edge(0, 2).edge(0, 3).build();
        let x = structural_features(&g);
        assert_eq!(x.shape(), (4, 2));
        for m in x.col_means() {
            assert!(m.abs() < 1e-4);
        }
        // Hub node 0 has the largest degree channel.
        assert!(x.get(0, 1) > x.get(1, 1));
    }

    #[test]
    fn fairgkd_learns() {
        let ds = dataset();
        let probs = FairGkd::new(Backbone::Gcn).fit_predict(&input(&ds), 0);
        assert!(test_accuracy(&ds, &probs) > 0.55);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(FairGkd::new(Backbone::Gcn).name(), "FairGKD\\S");
    }
}
