//! `Vanilla\S`: the raw backbone GNN trained without sensitive attributes
//! and without any fairness mechanism — the utility reference of Table II
//! and the bias baseline every method must beat.

use crate::common::{predict_probs, train_gnn, TrainOpts};
use fairwos_core::{FairMethod, TrainInput};
use fairwos_nn::Backbone;

/// The unmodified backbone GNN.
pub struct Vanilla {
    opts: TrainOpts,
}

impl Vanilla {
    /// Vanilla baseline on the given backbone with the default schedule.
    pub fn new(backbone: Backbone) -> Self {
        Self { opts: TrainOpts::default_for(backbone) }
    }

    /// Vanilla baseline with an explicit schedule.
    pub fn with_opts(opts: TrainOpts) -> Self {
        Self { opts }
    }
}

impl FairMethod for Vanilla {
    fn name(&self) -> String {
        "Vanilla\\S".to_string()
    }

    fn fit_predict(&self, input: &TrainInput<'_>, seed: u64) -> Vec<f32> {
        input.assert_valid();
        let (gnn, ctx, _) = train_gnn(
            input.graph,
            input.features,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed,
            None,
        );
        predict_probs(&gnn, &ctx, input.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{dataset, input, test_accuracy};
    use fairwos_fairness::delta_sp;

    #[test]
    fn vanilla_learns_but_is_biased() {
        let ds = dataset();
        let probs = Vanilla::new(Backbone::Gcn).fit_predict(&input(&ds), 0);
        assert!(test_accuracy(&ds, &probs) > 0.6, "vanilla fails to learn");
        // On a biased dataset the vanilla model exhibits a parity gap —
        // the premise of the whole paper.
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let ts = ds.sensitive_of(&ds.split.test);
        assert!(delta_sp(&tp, &ts) > 0.05, "vanilla shows no bias to mitigate");
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(Vanilla::new(Backbone::Gin).name(), "Vanilla\\S");
    }
}
