//! `FairRF` (Zhao, Dai, Shu & Wang, WSDM 2022): trains the classifier while
//! minimizing the (squared Pearson) correlation between its predictions and
//! each *related feature* — a feature suspected to proxy the sensitive
//! attribute.
//!
//! As in the paper (§V-A3), the i.i.d. method is applied on our backbone
//! GNN; the related-feature list is the same domain knowledge RemoveR gets.
//! Where RemoveR deletes the columns, FairRF keeps them but decorrelates the
//! logits from them.

use crate::common::{predict_probs, train_gnn, TrainOpts};
use fairwos_core::{FairMethod, TrainInput};
use fairwos_nn::Backbone;
use fairwos_tensor::Matrix;

/// Correlation-minimization baseline.
pub struct FairRF {
    opts: TrainOpts,
    /// Feature columns treated as related to the hidden sensitive attribute.
    related: Vec<usize>,
    /// Regularizer weight.
    pub gamma: f32,
}

impl FairRF {
    /// FairRF on the given backbone with the related-feature list.
    pub fn new(backbone: Backbone, related: Vec<usize>) -> Self {
        Self { opts: TrainOpts::default_for(backbone), related, gamma: 1.0 }
    }

    /// FairRF with explicit knobs.
    pub fn with_params(opts: TrainOpts, related: Vec<usize>, gamma: f32) -> Self {
        Self { opts, related, gamma }
    }
}

/// `γ Σ_j ρ(x_j, z)²` over the train nodes and its gradient w.r.t. `z`.
///
/// With both series centered, `dρ/dz_v = x̃_v/(s_x s_z) − ρ·z̃_v/s_z²`; the
/// centering projection is the identity on this expression because both
/// centered series sum to zero.
fn correlation_penalty(
    logits: &Matrix,
    features: &Matrix,
    related: &[usize],
    train: &[usize],
    gamma: f32,
) -> (f32, Matrix) {
    let n = train.len();
    let mut grad = Matrix::zeros(logits.rows(), 1);
    if n < 2 {
        return (0.0, grad);
    }
    let z: Vec<f32> = train.iter().map(|&v| logits.get(v, 0)).collect();
    let z_mean = z.iter().sum::<f32>() / n as f32;
    let z_c: Vec<f32> = z.iter().map(|&v| v - z_mean).collect();
    let sz = z_c.iter().map(|v| v * v).sum::<f32>().sqrt();
    if sz < 1e-8 {
        return (0.0, grad);
    }
    let mut loss = 0.0f32;
    for &j in related {
        let x: Vec<f32> = train.iter().map(|&v| features.get(v, j)).collect();
        let x_mean = x.iter().sum::<f32>() / n as f32;
        let x_c: Vec<f32> = x.iter().map(|&v| v - x_mean).collect();
        let sx = x_c.iter().map(|v| v * v).sum::<f32>().sqrt();
        if sx < 1e-8 {
            continue;
        }
        let rho = x_c.iter().zip(&z_c).map(|(a, b)| a * b).sum::<f32>() / (sx * sz);
        loss += gamma * rho * rho;
        for (idx, &v) in train.iter().enumerate() {
            let drho = x_c[idx] / (sx * sz) - rho * z_c[idx] / (sz * sz);
            let g = grad.get(v, 0) + 2.0 * gamma * rho * drho;
            grad.set(v, 0, g);
        }
    }
    (loss, grad)
}

impl FairMethod for FairRF {
    fn name(&self) -> String {
        "FairRF".to_string()
    }

    fn fit_predict(&self, input: &TrainInput<'_>, seed: u64) -> Vec<f32> {
        input.assert_valid();
        let features = input.features;
        let related = &self.related;
        let train = input.train;
        let gamma = self.gamma;
        let mut reg =
            move |logits: &Matrix| correlation_penalty(logits, features, related, train, gamma);
        let (gnn, ctx, _) = train_gnn(
            input.graph,
            input.features,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed,
            Some(&mut reg),
        );
        predict_probs(&gnn, &ctx, input.features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{dataset, input, test_accuracy};
    use fairwos_tensor::{approx_eq, seeded_rng};

    #[test]
    fn penalty_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(0);
        let features = Matrix::rand_uniform(6, 3, -1.0, 1.0, &mut rng);
        let logits = Matrix::rand_uniform(6, 1, -1.0, 1.0, &mut rng);
        let train = [0usize, 1, 2, 3, 4, 5];
        let related = [0usize, 2];
        let (_, grad) = correlation_penalty(&logits, &features, &related, &train, 0.9);
        let eps = 1e-3;
        for v in 0..6 {
            let mut up = logits.clone();
            up.set(v, 0, logits.get(v, 0) + eps);
            let mut dn = logits.clone();
            dn.set(v, 0, logits.get(v, 0) - eps);
            let (lu, _) = correlation_penalty(&up, &features, &related, &train, 0.9);
            let (ld, _) = correlation_penalty(&dn, &features, &related, &train, 0.9);
            let fd = (lu - ld) / (2.0 * eps);
            assert!(approx_eq(fd, grad.get(v, 0), 2e-2), "node {v}: {fd} vs {}", grad.get(v, 0));
        }
    }

    #[test]
    fn penalty_zero_for_uncorrelated() {
        // Orthogonal series: logits (1,-1,1,-1), feature (1,1,-1,-1).
        let logits = Matrix::from_rows(&[&[1.0], &[-1.0], &[1.0], &[-1.0]]);
        let features = Matrix::from_rows(&[&[1.0], &[1.0], &[-1.0], &[-1.0]]);
        let train = [0usize, 1, 2, 3];
        let (loss, _) = correlation_penalty(&logits, &features, &[0], &train, 1.0);
        assert!(loss.abs() < 1e-10);
    }

    #[test]
    fn penalty_max_for_identical_series() {
        let logits = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let features = logits.clone();
        let train = [0usize, 1, 2, 3];
        let (loss, _) = correlation_penalty(&logits, &features, &[0], &train, 1.0);
        assert!(approx_eq(loss, 1.0, 1e-5), "ρ² should be 1, got {loss}");
    }

    #[test]
    fn constant_feature_is_skipped() {
        let logits = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let features = Matrix::full(3, 1, 7.0);
        let train = [0usize, 1, 2];
        let (loss, grad) = correlation_penalty(&logits, &features, &[0], &train, 1.0);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.frobenius_norm(), 0.0);
    }

    #[test]
    fn fairrf_learns() {
        let ds = dataset();
        let related: Vec<usize> = (0..ds.spec.corr_features).collect();
        let probs = FairRF::new(Backbone::Gcn, related).fit_predict(&input(&ds), 0);
        assert!(test_accuracy(&ds, &probs) > 0.55);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(FairRF::new(Backbone::Gcn, vec![]).name(), "FairRF");
    }
}
