//! `RemoveR`: pre-processing baseline that deletes all *candidate-related*
//! attributes before training (paper §V-A3).
//!
//! The candidate list is domain knowledge ("which columns might proxy the
//! sensitive attribute") — in the original benchmarks it is hand-picked per
//! dataset. The harness passes each synthetic dataset's documented proxy
//! columns, i.e. it simulates a practitioner who knows which features to
//! distrust. Fig. 8's runtime profile (fastest method) follows from the
//! reduced feature dimension.

use crate::common::{predict_probs, train_gnn, TrainOpts};
use fairwos_core::{FairMethod, TrainInput};
use fairwos_nn::Backbone;

/// Drop-the-related-columns baseline.
pub struct RemoveR {
    opts: TrainOpts,
    /// Feature columns to remove before training.
    candidates: Vec<usize>,
}

impl RemoveR {
    /// RemoveR on the given backbone, deleting `candidates` columns.
    pub fn new(backbone: Backbone, candidates: Vec<usize>) -> Self {
        Self { opts: TrainOpts::default_for(backbone), candidates }
    }

    /// RemoveR with an explicit schedule.
    pub fn with_opts(opts: TrainOpts, candidates: Vec<usize>) -> Self {
        Self { opts, candidates }
    }
}

impl FairMethod for RemoveR {
    fn name(&self) -> String {
        "RemoveR".to_string()
    }

    fn fit_predict(&self, input: &TrainInput<'_>, seed: u64) -> Vec<f32> {
        input.assert_valid();
        let keep: Vec<usize> =
            (0..input.features.cols()).filter(|c| !self.candidates.contains(c)).collect();
        assert!(!keep.is_empty(), "RemoveR would delete every attribute");
        let reduced = input.features.select_cols(&keep);
        let (gnn, ctx, _) = train_gnn(
            input.graph,
            &reduced,
            input.labels,
            input.train,
            input.val,
            &self.opts,
            seed,
            None,
        );
        predict_probs(&gnn, &ctx, &reduced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::test_support::{dataset, input, test_accuracy};

    #[test]
    fn removes_columns_and_still_learns() {
        let ds = dataset();
        // Remove the documented proxy columns of the synthetic benchmark.
        let candidates: Vec<usize> = (0..ds.spec.corr_features).collect();
        let probs = RemoveR::new(Backbone::Gcn, candidates).fit_predict(&input(&ds), 0);
        assert_eq!(probs.len(), ds.num_nodes());
        assert!(test_accuracy(&ds, &probs) > 0.55);
    }

    #[test]
    #[should_panic(expected = "delete every attribute")]
    fn refuses_to_remove_everything() {
        let ds = dataset();
        let all: Vec<usize> = (0..ds.features.cols()).collect();
        let _ = RemoveR::new(Backbone::Gcn, all).fit_predict(&input(&ds), 0);
    }

    #[test]
    fn name_matches_paper() {
        assert_eq!(RemoveR::new(Backbone::Gcn, vec![0]).name(), "RemoveR");
    }
}
