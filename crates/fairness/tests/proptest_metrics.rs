//! Property-based tests for the fairness metrics.

use fairwos_fairness::{accuracy, auc_roc, delta_eo, delta_sp, f1_score, EvalReport, MeanStd};
use proptest::prelude::*;

/// Strategy: parallel (probs, labels, sensitive) arrays.
fn eval_arrays(n: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f32>, Vec<f32>, Vec<bool>)> {
    n.prop_flat_map(|len| {
        (
            prop::collection::vec(0.0f32..1.0, len),
            prop::collection::vec(prop::bool::ANY, len),
            prop::collection::vec(prop::bool::ANY, len),
        )
            .prop_map(|(p, y, s)| (p, y.into_iter().map(|b| if b { 1.0 } else { 0.0 }).collect(), s))
    })
}

proptest! {
    #[test]
    fn all_metrics_in_unit_interval((p, y, s) in eval_arrays(1..40)) {
        let r = EvalReport::compute(&p, &y, &s);
        for v in [r.accuracy, r.delta_sp, r.delta_eo, r.auc, r.f1] {
            prop_assert!((0.0..=1.0).contains(&v), "metric {v} outside [0,1]");
        }
    }

    #[test]
    fn delta_sp_symmetric_in_group_swap((p, _y, s) in eval_arrays(1..40)) {
        let flipped: Vec<bool> = s.iter().map(|&b| !b).collect();
        prop_assert_eq!(delta_sp(&p, &s), delta_sp(&p, &flipped));
    }

    #[test]
    fn delta_eo_symmetric_in_group_swap((p, y, s) in eval_arrays(1..40)) {
        let flipped: Vec<bool> = s.iter().map(|&b| !b).collect();
        prop_assert_eq!(delta_eo(&p, &y, &s), delta_eo(&p, &y, &flipped));
    }

    #[test]
    fn perfect_predictions_have_max_utility((_, y, s) in eval_arrays(2..40)) {
        let p: Vec<f32> = y.iter().map(|&v| if v >= 0.5 { 0.99 } else { 0.01 }).collect();
        prop_assert_eq!(accuracy(&p, &y), 1.0);
        let has_both = y.iter().any(|&v| v >= 0.5) && y.iter().any(|&v| v < 0.5);
        if has_both {
            prop_assert_eq!(auc_roc(&p, &y), 1.0);
            prop_assert_eq!(f1_score(&p, &y), 1.0);
        }
        // Perfect prediction ⇒ ΔEO = |1 − 1| = 0 whenever both groups have positives.
        let g0_pos = y.iter().zip(&s).any(|(&v, &g)| v >= 0.5 && !g);
        let g1_pos = y.iter().zip(&s).any(|(&v, &g)| v >= 0.5 && g);
        if g0_pos && g1_pos {
            prop_assert_eq!(delta_eo(&p, &y, &s), 0.0);
        }
    }

    #[test]
    fn constant_prediction_is_perfectly_sp_fair((_, y, s) in eval_arrays(1..40), c in 0.0f32..1.0) {
        let p = vec![c; y.len()];
        prop_assert_eq!(delta_sp(&p, &s), 0.0);
        prop_assert_eq!(delta_eo(&p, &y, &s), 0.0);
    }

    #[test]
    fn auc_invariant_under_monotone_transform((p, y, _) in eval_arrays(2..30)) {
        let squashed: Vec<f32> = p.iter().map(|&v| v * v * 0.5).collect(); // strictly monotone on [0,1]
        let a1 = auc_roc(&p, &y);
        let a2 = auc_roc(&squashed, &y);
        prop_assert!((a1 - a2).abs() < 1e-9, "{a1} vs {a2}");
    }

    #[test]
    fn mean_std_bounds(values in prop::collection::vec(0.0f64..1.0, 1..20)) {
        let m = MeanStd::of(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m.mean >= lo - 1e-12 && m.mean <= hi + 1e-12);
        prop_assert!(m.std >= 0.0);
        // std is at most half the range times sqrt(n/(n-1)) — loose bound: range.
        prop_assert!(m.std <= (hi - lo) + 1e-12 || values.len() == 1);
    }
}
