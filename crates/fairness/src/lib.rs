//! Utility and fairness metrics for binary node classification.
//!
//! Implements the evaluation protocol of the Fairwos paper (§V-A2):
//! accuracy for utility, and statistical parity / equal opportunity gaps for
//! fairness (Eq. 43–44), all computed on the test split where the sensitive
//! attribute is revealed. Also provides mean±std aggregation over repeated
//! runs (every number in Table II is a 10-run mean ± std).

mod aggregate;
mod calibration;
mod metrics;

pub use aggregate::{MeanStd, RunAggregator};
pub use calibration::{expected_calibration_error, group_reports, GroupReport, ReliabilityBin};
pub use metrics::{
    accuracy, auc_roc, counterfactual_consistency, delta_eo, delta_sp, f1_score, group_confusion,
    EvalReport, GroupConfusion,
};

#[cfg(test)]
mod tests {
    // Crate-level integration of the two halves: aggregate a few eval
    // reports the way the Table II harness does.
    use super::*;

    #[test]
    fn aggregating_eval_reports() {
        let mut acc = RunAggregator::new();
        for (a, sp) in [(0.8, 0.1), (0.9, 0.2), (0.85, 0.15)] {
            acc.push("acc", a);
            acc.push("delta_sp", sp);
        }
        let m = acc.mean_std("acc").unwrap();
        assert!((m.mean - 0.85).abs() < 1e-9);
        assert!(acc.mean_std("delta_sp").unwrap().std > 0.0);
        assert!(acc.mean_std("missing").is_none());
    }
}
