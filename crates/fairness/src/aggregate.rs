//! Aggregation of metrics over repeated runs (Table II is 10-run mean±std).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A mean ± sample standard deviation pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for a single run).
    pub std: f64,
}

impl MeanStd {
    /// Computes mean ± std of a sample.
    ///
    /// # Panics
    /// If `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot aggregate zero runs");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let std = if values.len() < 2 {
            0.0
        } else {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Self { mean, std }
    }

    /// Table II cell format: `86.56 ± 2.74` (inputs scaled by 100).
    pub fn percent_cell(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean * 100.0, self.std * 100.0)
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.std)
    }
}

/// Collects named metric values across runs and reports mean ± std per name.
///
/// BTreeMap keeps output ordering deterministic for the experiment logs.
#[derive(Clone, Debug, Default)]
pub struct RunAggregator {
    values: BTreeMap<String, Vec<f64>>,
}

impl RunAggregator {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value of `metric` from one run.
    pub fn push(&mut self, metric: &str, value: f64) {
        self.values.entry(metric.to_string()).or_default().push(value);
    }

    /// Records every field of an eval report at once.
    pub fn push_report(&mut self, report: &crate::EvalReport) {
        self.push("accuracy", report.accuracy);
        self.push("delta_sp", report.delta_sp);
        self.push("delta_eo", report.delta_eo);
        self.push("auc", report.auc);
        self.push("f1", report.f1);
    }

    /// Mean ± std of a metric, or `None` if it was never pushed.
    pub fn mean_std(&self, metric: &str) -> Option<MeanStd> {
        self.values.get(metric).map(|v| MeanStd::of(v))
    }

    /// Number of runs recorded for a metric.
    pub fn run_count(&self, metric: &str) -> usize {
        self.values.get(metric).map_or(0, Vec::len)
    }

    /// All metric names in deterministic order.
    pub fn metrics(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_known() {
        let m = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m.mean - 5.0).abs() < 1e-12);
        // sample std of this classic example is ~2.138
        assert!((m.std - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn single_run_zero_std() {
        let m = MeanStd::of(&[0.7]);
        assert_eq!(m.mean, 0.7);
        assert_eq!(m.std, 0.0);
    }

    #[test]
    fn percent_cell_format() {
        let m = MeanStd { mean: 0.8656, std: 0.0274 };
        assert_eq!(m.percent_cell(), "86.56 ± 2.74");
    }

    #[test]
    fn aggregator_counts_and_order() {
        let mut a = RunAggregator::new();
        a.push("z_metric", 1.0);
        a.push("a_metric", 2.0);
        a.push("a_metric", 4.0);
        assert_eq!(a.run_count("a_metric"), 2);
        assert_eq!(a.run_count("nope"), 0);
        let names: Vec<&str> = a.metrics().collect();
        assert_eq!(names, ["a_metric", "z_metric"]);
        assert_eq!(a.mean_std("a_metric").unwrap().mean, 3.0);
    }

    #[test]
    fn push_report_records_all_fields() {
        let mut a = RunAggregator::new();
        a.push_report(&crate::EvalReport {
            accuracy: 0.9,
            delta_sp: 0.1,
            delta_eo: 0.05,
            auc: 0.95,
            f1: 0.88,
        });
        assert_eq!(a.metrics().count(), 5);
        assert_eq!(a.mean_std("delta_eo").unwrap().mean, 0.05);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_aggregate_panics() {
        let _ = MeanStd::of(&[]);
    }
}
