//! The metrics themselves: accuracy, AUC, F1, ΔSP, ΔEO.

use serde::{Deserialize, Serialize};

/// Validates the three parallel evaluation arrays and panics with a clear
/// message on mismatch.
fn check_lengths(preds: usize, labels: usize, sens: usize) {
    assert!(
        preds == labels && labels == sens,
        "evaluation arrays disagree: {preds} preds, {labels} labels, {sens} sensitive"
    );
}

/// Classification accuracy of thresholded predictions.
///
/// `probs[i]` is `P(y=1)`; the threshold is 0.5.
///
/// # Panics
/// If `probs` and `labels` have different lengths or are empty.
pub fn accuracy(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs vs labels length");
    assert!(!probs.is_empty(), "empty evaluation set");
    let correct = probs
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
        .count();
    correct as f64 / probs.len() as f64
}

/// Statistical parity gap (paper Eq. 43):
/// `ΔSP = |P(ŷ=1 | s=0) − P(ŷ=1 | s=1)|`, in `[0, 1]`.
///
/// Returns 0 when either group is empty (no gap is measurable).
///
/// # Panics
/// If `probs` and `sens` have different lengths.
pub fn delta_sp(probs: &[f32], sens: &[bool]) -> f64 {
    assert_eq!(probs.len(), sens.len(), "probs vs sensitive length");
    let (mut pos0, mut n0, mut pos1, mut n1) = (0usize, 0usize, 0usize, 0usize);
    for (&p, &s) in probs.iter().zip(sens) {
        let positive = p >= 0.5;
        if s {
            n1 += 1;
            pos1 += positive as usize;
        } else {
            n0 += 1;
            pos0 += positive as usize;
        }
    }
    if n0 == 0 || n1 == 0 {
        return 0.0;
    }
    (pos0 as f64 / n0 as f64 - pos1 as f64 / n1 as f64).abs()
}

/// Equal opportunity gap (paper Eq. 44):
/// `ΔEO = |P(ŷ=1 | y=1, s=0) − P(ŷ=1 | y=1, s=1)|`, in `[0, 1]`.
///
/// Returns 0 when either group has no positive instances.
pub fn delta_eo(probs: &[f32], labels: &[f32], sens: &[bool]) -> f64 {
    check_lengths(probs.len(), labels.len(), sens.len());
    let (mut tp0, mut p0, mut tp1, mut p1) = (0usize, 0usize, 0usize, 0usize);
    for ((&p, &y), &s) in probs.iter().zip(labels).zip(sens) {
        if y < 0.5 {
            continue;
        }
        let positive = p >= 0.5;
        if s {
            p1 += 1;
            tp1 += positive as usize;
        } else {
            p0 += 1;
            tp0 += positive as usize;
        }
    }
    if p0 == 0 || p1 == 0 {
        return 0.0;
    }
    (tp0 as f64 / p0 as f64 - tp1 as f64 / p1 as f64).abs()
}

/// Area under the ROC curve via the rank statistic (Mann–Whitney U).
/// Ties in scores contribute half. Returns 0.5 when one class is absent.
///
/// # Panics
/// If `probs` and `labels` have different lengths.
pub fn auc_roc(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs vs labels length");
    let mut pos: Vec<f32> = Vec::new();
    let mut neg: Vec<f32> = Vec::new();
    for (&p, &y) in probs.iter().zip(labels) {
        if y >= 0.5 {
            pos.push(p)
        } else {
            neg.push(p)
        }
    }
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    // Sort-based O((n+m) log(n+m)) computation.
    let mut all: Vec<(f32, bool)> = pos
        .iter()
        .map(|&p| (p, true))
        .chain(neg.iter().map(|&p| (p, false)))
        .collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Assign average ranks over tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = ((i + 1 + j + 1) as f64) / 2.0;
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let n_pos = pos.len() as f64;
    let n_neg = neg.len() as f64;
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// F1 score of the positive class. Returns 0 when precision+recall is 0.
///
/// # Panics
/// If `probs` and `labels` have different lengths.
pub fn f1_score(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len(), "probs vs labels length");
    let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
    for (&p, &y) in probs.iter().zip(labels) {
        let pred = p >= 0.5;
        let actual = y >= 0.5;
        match (pred, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let denom = 2 * tp + fp + fn_;
    if denom == 0 {
        0.0
    } else {
        2.0 * tp as f64 / denom as f64
    }
}

/// Counterfactual consistency: the fraction of `(node, counterfactual)`
/// pairs whose thresholded predictions agree.
///
/// This is the direct operationalisation of graph counterfactual fairness —
/// a prediction should not change when a node is swapped for its
/// counterfactual. 1.0 = perfectly consistent.
///
/// Returns 1.0 for an empty pair list (nothing to violate).
pub fn counterfactual_consistency(probs: &[f32], pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let agree = pairs
        .iter()
        .filter(|&&(a, b)| (probs[a] >= 0.5) == (probs[b] >= 0.5))
        .count();
    agree as f64 / pairs.len() as f64
}

/// Per-sensitive-group confusion counts, for subgroup analysis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl GroupConfusion {
    /// Group size.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Positive prediction rate `P(ŷ=1)` within the group.
    pub fn positive_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.tp + self.fp) as f64 / t as f64
        }
    }

    /// True positive rate `P(ŷ=1 | y=1)` within the group.
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }
}

/// Confusion counts for `(s = false, s = true)`.
pub fn group_confusion(probs: &[f32], labels: &[f32], sens: &[bool]) -> (GroupConfusion, GroupConfusion) {
    check_lengths(probs.len(), labels.len(), sens.len());
    let mut g = (GroupConfusion::default(), GroupConfusion::default());
    for ((&p, &y), &s) in probs.iter().zip(labels).zip(sens) {
        let gc = if s { &mut g.1 } else { &mut g.0 };
        match (p >= 0.5, y >= 0.5) {
            (true, true) => gc.tp += 1,
            (true, false) => gc.fp += 1,
            (false, false) => gc.tn += 1,
            (false, true) => gc.fn_ += 1,
        }
    }
    g
}

/// The full evaluation bundle for one trained model on one test set — the
/// three columns of Table II plus AUC/F1 extras.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EvalReport {
    /// Accuracy (Table II `ACC`, as a fraction — multiply by 100 to match).
    pub accuracy: f64,
    /// Statistical parity gap (Table II `ΔDP`).
    pub delta_sp: f64,
    /// Equal opportunity gap (Table II `ΔEO`).
    pub delta_eo: f64,
    /// Area under ROC.
    pub auc: f64,
    /// Positive-class F1.
    pub f1: f64,
}

impl EvalReport {
    /// Evaluates thresholded probabilities against labels and the revealed
    /// sensitive attribute.
    pub fn compute(probs: &[f32], labels: &[f32], sens: &[bool]) -> Self {
        check_lengths(probs.len(), labels.len(), sens.len());
        Self {
            accuracy: accuracy(probs, labels),
            delta_sp: delta_sp(probs, sens),
            delta_eo: delta_eo(probs, labels, sens),
            auc: auc_roc(probs, labels),
            f1: f1_score(probs, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_known() {
        assert_eq!(accuracy(&[0.9, 0.1, 0.6], &[1.0, 0.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0.9], &[1.0]), 1.0);
    }

    #[test]
    fn delta_sp_hand_computed() {
        // group0: preds 1,0 → rate 0.5; group1: preds 1,1 → rate 1.0.
        let probs = [0.9, 0.1, 0.8, 0.7];
        let sens = [false, false, true, true];
        assert!((delta_sp(&probs, &sens) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn delta_sp_zero_for_identical_rates() {
        let probs = [0.9, 0.1, 0.9, 0.1];
        let sens = [false, false, true, true];
        assert_eq!(delta_sp(&probs, &sens), 0.0);
    }

    #[test]
    fn delta_sp_empty_group_is_zero() {
        assert_eq!(delta_sp(&[0.9, 0.2], &[false, false]), 0.0);
    }

    #[test]
    fn delta_eo_hand_computed() {
        // positives: idx0 (s=0, pred 1), idx2 (s=1, pred 0)
        // TPR group0 = 1, TPR group1 = 0 → ΔEO = 1.
        let probs = [0.9, 0.9, 0.1, 0.1];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let sens = [false, false, true, true];
        assert_eq!(delta_eo(&probs, &labels, &sens), 1.0);
    }

    #[test]
    fn delta_eo_ignores_negatives() {
        // All negatives in group1 ⇒ no positive instances ⇒ gap 0.
        let probs = [0.9, 0.9];
        let labels = [1.0, 0.0];
        let sens = [false, true];
        assert_eq!(delta_eo(&probs, &labels, &sens), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [1.0, 1.0, 0.0, 0.0];
        assert_eq!(auc_roc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(auc_roc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
    }

    #[test]
    fn auc_ties_give_half() {
        let labels = [1.0, 0.0];
        assert_eq!(auc_roc(&[0.5, 0.5], &labels), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc_roc(&[0.9, 0.8], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn f1_known() {
        // tp=1, fp=1, fn=1 ⇒ F1 = 2/4 = 0.5.
        let probs = [0.9, 0.9, 0.1, 0.1];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(f1_score(&probs, &labels), 0.5);
        assert_eq!(f1_score(&[0.1], &[0.0]), 0.0);
    }

    #[test]
    fn group_confusion_counts() {
        let probs = [0.9, 0.9, 0.1, 0.1];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let sens = [false, true, false, true];
        let (g0, g1) = group_confusion(&probs, &labels, &sens);
        assert_eq!(g0, GroupConfusion { tp: 1, fp: 0, tn: 0, fn_: 1 });
        assert_eq!(g1, GroupConfusion { tp: 0, fp: 1, tn: 1, fn_: 0 });
        assert_eq!(g0.tpr(), 0.5);
        assert_eq!(g1.positive_rate(), 0.5);
    }

    #[test]
    fn metric_gaps_match_group_confusion() {
        let probs = [0.9, 0.2, 0.7, 0.6, 0.3, 0.8];
        let labels = [1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let sens = [false, true, false, true, false, true];
        let (g0, g1) = group_confusion(&probs, &labels, &sens);
        let sp = delta_sp(&probs, &sens);
        assert!((sp - (g0.positive_rate() - g1.positive_rate()).abs()) < 1e-12);
        let eo = delta_eo(&probs, &labels, &sens);
        assert!((eo - (g0.tpr() - g1.tpr()).abs()).abs() < 1e-12);
    }

    #[test]
    fn counterfactual_consistency_counts_agreement() {
        let probs = [0.9, 0.8, 0.1, 0.6];
        // (0,1) agree, (0,2) disagree, (2,3) disagree.
        let pairs = [(0usize, 1usize), (0, 2), (2, 3)];
        assert!((counterfactual_consistency(&probs, &pairs) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(counterfactual_consistency(&probs, &[]), 1.0);
        assert_eq!(counterfactual_consistency(&probs, &[(0, 0)]), 1.0);
    }

    #[test]
    fn eval_report_bundles() {
        let r = EvalReport::compute(&[0.9, 0.1], &[1.0, 0.0], &[false, true]);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.auc, 1.0);
        assert!(r.delta_sp > 0.0); // group0 always positive, group1 never
    }

    #[test]
    #[should_panic(expected = "evaluation arrays disagree")]
    fn mismatched_lengths_panic() {
        let _ = delta_eo(&[0.5], &[1.0, 0.0], &[true, false]);
    }
}
