//! Probability calibration diagnostics.
//!
//! Fairness interventions reshape the score distribution; a model can
//! satisfy ΔSP while becoming badly miscalibrated (scores no longer mean
//! probabilities), which matters when downstream decisions threshold at
//! values other than 0.5. The experiments report ECE alongside the paper's
//! metrics so that regression is visible.

use serde::{Deserialize, Serialize};

/// One bucket of a reliability diagram.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Mean predicted probability of the samples in the bin.
    pub mean_confidence: f64,
    /// Empirical positive rate of the samples in the bin.
    pub empirical_rate: f64,
    /// Number of samples in the bin.
    pub count: usize,
}

/// Expected calibration error over `bins` equal-width probability buckets:
/// `ECE = Σ_b (n_b / N) · |conf_b − acc_b|`, in `[0, 1]`.
///
/// Also returns the reliability diagram. Empty bins are skipped.
///
/// # Panics
/// If `probs` and `labels` have different lengths, `probs` is empty, or
/// `bins` is zero.
pub fn expected_calibration_error(
    probs: &[f32],
    labels: &[f32],
    bins: usize,
) -> (f64, Vec<ReliabilityBin>) {
    assert_eq!(probs.len(), labels.len(), "probs vs labels length");
    assert!(bins >= 1, "need at least one bin");
    assert!(!probs.is_empty(), "empty evaluation set");
    let mut conf_sum = vec![0.0f64; bins];
    let mut pos_sum = vec![0.0f64; bins];
    let mut counts = vec![0usize; bins];
    for (&p, &y) in probs.iter().zip(labels) {
        let b = ((p as f64 * bins as f64) as usize).min(bins - 1);
        conf_sum[b] += p as f64;
        pos_sum[b] += y as f64;
        counts[b] += 1;
    }
    let n = probs.len() as f64;
    let mut ece = 0.0f64;
    let mut diagram = Vec::new();
    for b in 0..bins {
        if counts[b] == 0 {
            continue;
        }
        let conf = conf_sum[b] / counts[b] as f64;
        let rate = pos_sum[b] / counts[b] as f64;
        ece += (counts[b] as f64 / n) * (conf - rate).abs();
        diagram.push(ReliabilityBin { mean_confidence: conf, empirical_rate: rate, count: counts[b] });
    }
    (ece, diagram)
}

/// Per-sensitive-group breakdown of utility and score statistics — the
/// subgroup table behind the ΔSP/ΔEO headline numbers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GroupReport {
    /// Group size.
    pub count: usize,
    /// Accuracy within the group.
    pub accuracy: f64,
    /// Positive prediction rate `P(ŷ=1)`.
    pub positive_rate: f64,
    /// True positive rate `P(ŷ=1 | y=1)` (0 when the group has no positives).
    pub tpr: f64,
    /// Mean predicted probability.
    pub mean_score: f64,
}

/// Computes [`GroupReport`]s for `(s = false, s = true)`.
///
/// # Panics
/// If the three evaluation arrays have different lengths.
pub fn group_reports(probs: &[f32], labels: &[f32], sens: &[bool]) -> (GroupReport, GroupReport) {
    assert!(
        probs.len() == labels.len() && labels.len() == sens.len(),
        "evaluation arrays disagree"
    );
    let report_for = |flag: bool| -> GroupReport {
        let idx: Vec<usize> = (0..sens.len()).filter(|&i| sens[i] == flag).collect();
        if idx.is_empty() {
            return GroupReport { count: 0, accuracy: 0.0, positive_rate: 0.0, tpr: 0.0, mean_score: 0.0 };
        }
        let n = idx.len() as f64;
        let correct = idx.iter().filter(|&&i| (probs[i] >= 0.5) == (labels[i] >= 0.5)).count();
        let pos_pred = idx.iter().filter(|&&i| probs[i] >= 0.5).count();
        let actual_pos: Vec<usize> = idx.iter().copied().filter(|&i| labels[i] >= 0.5).collect();
        let tp = actual_pos.iter().filter(|&&i| probs[i] >= 0.5).count();
        GroupReport {
            count: idx.len(),
            accuracy: correct as f64 / n,
            positive_rate: pos_pred as f64 / n,
            tpr: if actual_pos.is_empty() { 0.0 } else { tp as f64 / actual_pos.len() as f64 },
            mean_score: idx.iter().map(|&i| probs[i] as f64).sum::<f64>() / n,
        }
    };
    (report_for(false), report_for(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_calibrated_scores_give_zero_ece() {
        // Scores 0.25 with 25% positives, 0.75 with 75% positives.
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            probs.push(0.25);
            labels.push(if i % 4 == 0 { 1.0 } else { 0.0 });
            probs.push(0.75);
            labels.push(if i % 4 != 0 { 1.0 } else { 0.0 });
        }
        let (ece, diagram) = expected_calibration_error(&probs, &labels, 10);
        assert!(ece < 1e-9, "ece {ece}");
        assert_eq!(diagram.len(), 2);
    }

    #[test]
    fn overconfident_scores_give_high_ece() {
        // Always predicts 0.99 but only half are positive.
        let probs = vec![0.99f32; 100];
        let labels: Vec<f32> = (0..100).map(|i| (i % 2) as f32).collect();
        let (ece, _) = expected_calibration_error(&probs, &labels, 10);
        assert!((ece - 0.49).abs() < 1e-2, "ece {ece}");
    }

    #[test]
    fn ece_bounds() {
        let probs = [0.1, 0.6, 0.8, 0.3];
        let labels = [0.0, 1.0, 1.0, 1.0];
        let (ece, _) = expected_calibration_error(&probs, &labels, 5);
        assert!((0.0..=1.0).contains(&ece));
    }

    #[test]
    fn group_reports_hand_computed() {
        let probs = [0.9, 0.1, 0.8, 0.2];
        let labels = [1.0, 1.0, 0.0, 0.0];
        let sens = [false, false, true, true];
        let (g0, g1) = group_reports(&probs, &labels, &sens);
        assert_eq!(g0.count, 2);
        assert_eq!(g0.accuracy, 0.5); // 0.9→1 ok, 0.1→1 wrong
        assert_eq!(g0.positive_rate, 0.5);
        assert_eq!(g0.tpr, 0.5);
        assert!((g0.mean_score - 0.5).abs() < 1e-6);
        assert_eq!(g1.tpr, 0.0); // no actual positives in group 1
        assert_eq!(g1.accuracy, 0.5); // 0.8→1 wrong, 0.2→0 ok
    }

    #[test]
    fn group_reports_consistent_with_gap_metrics() {
        let probs = [0.9, 0.2, 0.7, 0.6, 0.3, 0.8];
        let labels = [1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let sens = [false, true, false, true, false, true];
        let (g0, g1) = group_reports(&probs, &labels, &sens);
        let sp = crate::delta_sp(&probs, &sens);
        assert!((sp - (g0.positive_rate - g1.positive_rate).abs()) < 1e-12);
        let eo = crate::delta_eo(&probs, &labels, &sens);
        assert!((eo - (g0.tpr - g1.tpr).abs()).abs() < 1e-12);
    }

    #[test]
    fn empty_group_is_zeroed() {
        let (g0, g1) = group_reports(&[0.9], &[1.0], &[false]);
        assert_eq!(g0.count, 1);
        assert_eq!(g1.count, 0);
        assert_eq!(g1.accuracy, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty evaluation set")]
    fn ece_empty_panics() {
        let _ = expected_calibration_error(&[], &[], 4);
    }
}
