//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`], plus a small structural validator so CI can check a
//! scraped payload without an external `promtool`.
//!
//! # Encoding scheme
//!
//! The registry's `/`-separated labels are flattened into metric *names*
//! (every non-`[a-zA-Z0-9_]` byte becomes `_`, so `serve/latency/p50_ns` →
//! `fairwos_serve_latency_p50_ns`) rather than into Prometheus labels: each
//! registry label is one time series, a one-to-one mapping with nothing to
//! quote or escape. Per instrument:
//!
//! | registry kind | exposition |
//! |---|---|
//! | counter | `fairwos_<l>_total` (counter) + `fairwos_<l>_calls_total` (counter) |
//! | span | `fairwos_span_<l>_count` (counter), `_seconds_total` (counter), `_seconds_min` / `_seconds_max` (gauges) |
//! | scale (`scale_max`) | `fairwos_scale_<l>_max` (gauge) |
//! | gauge (`gauge_set`) | `fairwos_gauge_<l>` (gauge) |
//! | journal | `fairwos_journal_events` / `_capacity` (gauges), `fairwos_journal_dropped_total` (counter) |
//!
//! The output is **byte-stable** for a given snapshot: the snapshot's
//! vectors come label-sorted from the registry's `BTreeMap`s, floats render
//! with Rust's shortest round-trip formatting, and every section is emitted
//! in a fixed order. `tests/golden_prometheus.rs` pins the exact bytes.

use crate::snapshot::MetricsSnapshot;

/// The `Content-Type` an HTTP endpoint should declare for
/// [`prometheus_text`] output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Appends `label` with every byte outside `[a-zA-Z0-9_]` replaced by `_`.
/// In particular the registry's `/` separators become `_`.
fn push_sanitized(out: &mut String, label: &str) {
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

/// Appends one `# TYPE` header plus one sample line for the metric named
/// `prefix + sanitize(label) + suffix`.
fn push_sample(out: &mut String, prefix: &str, label: &str, suffix: &str, kind: &str, value: &str) {
    let mut name = String::with_capacity(prefix.len() + label.len() + suffix.len());
    name.push_str(prefix);
    push_sanitized(&mut name, label);
    name.push_str(suffix);
    out.push_str("# TYPE ");
    out.push_str(&name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(&name);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Shortest round-trip decimal for an f64 (Prometheus values are floats;
/// non-finite values cannot come from the registry's u64/ns aggregates).
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Renders `snap` as Prometheus text exposition, deterministically: the
/// same snapshot always produces the same bytes.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &snap.counters {
        push_sample(&mut out, "fairwos_", &c.label, "_total", "counter", &c.total.to_string());
        push_sample(
            &mut out,
            "fairwos_",
            &c.label,
            "_calls_total",
            "counter",
            &c.calls.to_string(),
        );
    }
    for s in &snap.spans {
        push_sample(&mut out, "fairwos_span_", &s.label, "_count", "counter", &s.count.to_string());
        push_sample(
            &mut out,
            "fairwos_span_",
            &s.label,
            "_seconds_total",
            "counter",
            &fmt_f64(s.total_secs),
        );
        push_sample(
            &mut out,
            "fairwos_span_",
            &s.label,
            "_seconds_min",
            "gauge",
            &fmt_f64(s.min_secs),
        );
        push_sample(
            &mut out,
            "fairwos_span_",
            &s.label,
            "_seconds_max",
            "gauge",
            &fmt_f64(s.max_secs),
        );
    }
    for s in &snap.scales {
        push_sample(&mut out, "fairwos_scale_", &s.label, "_max", "gauge", &s.max.to_string());
    }
    for g in &snap.gauges {
        push_sample(&mut out, "fairwos_gauge_", &g.label, "", "gauge", &g.value.to_string());
    }
    push_sample(&mut out, "fairwos_", "journal_events", "", "gauge", &snap.journal.len.to_string());
    push_sample(
        &mut out,
        "fairwos_",
        "journal_dropped",
        "_total",
        "counter",
        &snap.journal.dropped.to_string(),
    );
    push_sample(
        &mut out,
        "fairwos_",
        "journal_capacity",
        "",
        "gauge",
        &snap.journal.capacity.to_string(),
    );
    out
}

/// True for a valid Prometheus metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Structurally validates a text-exposition payload — the promtool-free
/// check CI's scrape smoke test runs on a live `GET /metrics` body:
///
/// * every line is `# TYPE <name> <counter|gauge>`, a `# HELP`/comment, or
///   a `<name> <float>` sample;
/// * every sample's name was declared by a preceding `# TYPE` line;
/// * no `# TYPE` is declared twice, and none is left sample-less;
/// * metric names are lexically valid and sample values parse as `f64`.
///
/// Returns the number of samples.
///
/// # Errors
/// A description of the first malformed line.
pub fn validate_prometheus_text(text: &str) -> Result<usize, String> {
    let mut declared: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut sampled: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let (name, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(name), Some(kind), None) => (name, kind),
                _ => return Err(format!("line {n}: malformed # TYPE line: {line:?}")),
            };
            if !valid_metric_name(name) {
                return Err(format!("line {n}: invalid metric name {name:?}"));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown metric type {kind:?}"));
            }
            if !declared.insert(name.to_owned()) {
                return Err(format!("line {n}: duplicate # TYPE for {name:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(' ');
        let (name, value) = match (parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(value), None) => (name, value),
            _ => return Err(format!("line {n}: malformed sample line: {line:?}")),
        };
        // Strip an optional {labels} block (this crate never emits one, but
        // the validator should accept general exposition).
        let name = name.split('{').next().unwrap_or(name);
        if !valid_metric_name(name) {
            return Err(format!("line {n}: invalid metric name {name:?}"));
        }
        if value.parse::<f64>().is_err() {
            return Err(format!("line {n}: sample value {value:?} is not a float"));
        }
        if !declared.contains(name) {
            return Err(format!("line {n}: sample {name:?} has no preceding # TYPE"));
        }
        sampled.insert(name.to_owned());
        samples += 1;
    }
    if let Some(orphan) = declared.iter().find(|d| !sampled.contains(d.as_str())) {
        return Err(format!("# TYPE {orphan:?} declared but never sampled"));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CounterMetric, ScaleMetric, SpanMetric};
    use crate::snapshot::{GaugeMetric, JournalStats};

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            spans: vec![SpanMetric {
                label: "serve/precompute".to_owned(),
                count: 2,
                total_secs: 0.5,
                min_secs: 0.125,
                max_secs: 0.375,
            }],
            counters: vec![CounterMetric {
                label: "serve/queries".to_owned(),
                calls: 7,
                total: 420,
            }],
            scales: vec![ScaleMetric { label: "serve/batch/max".to_owned(), max: 64 }],
            gauges: vec![GaugeMetric { label: "serve/latency/p50_ns".to_owned(), value: 2047 }],
            journal: JournalStats { len: 9, dropped: 3, capacity: 65536 },
        }
    }

    #[test]
    fn labels_sanitize_slashes_to_underscores() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("fairwos_serve_queries_total 420\n"), "{text}");
        assert!(text.contains("fairwos_gauge_serve_latency_p50_ns 2047\n"), "{text}");
        assert!(!text.contains('/'), "no registry separator may survive: {text}");
    }

    #[test]
    fn every_metric_has_a_type_line_and_validates() {
        let text = prometheus_text(&sample_snapshot());
        let samples = validate_prometheus_text(&text).expect("own output must validate");
        // 2 per counter + 4 per span + 1 scale + 1 gauge + 3 journal.
        assert_eq!(samples, 11);
        assert!(text.contains("# TYPE fairwos_journal_dropped_total counter\n"));
        assert!(text.contains("fairwos_journal_dropped_total 3\n"));
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(prometheus_text(&sample_snapshot()), prometheus_text(&sample_snapshot()));
    }

    #[test]
    fn validator_rejects_malformed_payloads() {
        assert!(validate_prometheus_text("fairwos_x 1\n").is_err(), "sample without TYPE");
        assert!(
            validate_prometheus_text("# TYPE fairwos_x counter\nfairwos_x one\n").is_err(),
            "non-float value"
        );
        assert!(
            validate_prometheus_text("# TYPE fairwos_x counter\n").is_err(),
            "TYPE without sample"
        );
        assert!(
            validate_prometheus_text("# TYPE 9bad gauge\n9bad 1\n").is_err(),
            "invalid name"
        );
        let ok = "# TYPE x_total counter\nx_total{path=\"/metrics\"} 4\n";
        assert_eq!(validate_prometheus_text(ok), Ok(1), "labelled samples accepted");
    }
}
