//! Per-epoch training telemetry: one typed [`EpochRecord`] per stage-2 /
//! stage-3 epoch, serialized as JSON Lines (`results/telemetry.jsonl`).
//!
//! Like [`crate::RunMetrics`], everything here is always compiled and
//! dependency-free; the *trainer* decides whether to emit records (it only
//! does so when handed a [`TelemetrySink`]). The line layout is a stable
//! contract with byte-stable field order, pinned by
//! `tests/golden_telemetry.rs` — bump [`TELEMETRY_SCHEMA_VERSION`] on any
//! shape change and regenerate the fixture.

use std::io::Write as _;
use std::path::Path;

use crate::json::{push_f64, push_str_literal};

/// Version stamp written into every telemetry line so readers can detect
/// schema drift without guessing from the shape.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Utility/fairness metrics computed on the eval split at an
/// `eval_interval` epoch (revealed sensitive attribute required, so these
/// are evaluation-only — the trainer never sees them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalMetrics {
    /// Classification accuracy at threshold 0.5.
    pub accuracy: f64,
    /// Binary F1 score at threshold 0.5.
    pub f1: f64,
    /// Statistical-parity gap ΔSP.
    pub delta_sp: f64,
    /// Equal-opportunity gap ΔEO.
    pub delta_eo: f64,
}

/// One epoch's worth of training telemetry.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochRecord {
    /// Training stage: 2 = classifier pre-training, 3 = fine-tuning.
    pub stage: u8,
    /// 0-based epoch index within the stage.
    pub epoch: u64,
    /// Classification (utility) loss — BCE on the training nodes.
    pub loss_cls: f64,
    /// Invariance loss — the λ-weighted counterfactual regularizer
    /// `α Σᵢ λᵢ Dᵢ` (0 during stage 2, where it is not optimized).
    pub loss_inv: f64,
    /// Sufficiency proxy — the unweighted mean of the per-attribute
    /// aggregated counterfactual distances `Dᵢ` (0 during stage 2).
    pub loss_suf: f64,
    /// The per-attribute weights λ in effect *after* this epoch's update.
    /// Empty during stage 2, where λ is not yet active.
    pub lambda: Vec<f64>,
    /// Global L2 norm of all parameter gradients accumulated this epoch.
    pub grad_norm: f64,
    /// Kernel-counter deltas since the previous record, sorted by label.
    /// Empty in uninstrumented builds (counters need the `enabled` feature).
    pub counters: Vec<(String, u64)>,
    /// Eval-split metrics, present only on `eval_interval` epochs when the
    /// caller provided an eval split.
    pub eval: Option<EvalMetrics>,
}

impl EpochRecord {
    /// Serializes this record as one JSONL line (no trailing newline).
    /// Field order is fixed; the exact bytes are pinned by the golden
    /// fixture test.
    pub fn to_jsonl_line(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str(&format!(
            "{{\"schema_version\": {TELEMETRY_SCHEMA_VERSION}, \"stage\": {}, \"epoch\": {}",
            self.stage, self.epoch
        ));
        out.push_str(", \"loss_cls\": ");
        push_f64(&mut out, self.loss_cls);
        out.push_str(", \"loss_inv\": ");
        push_f64(&mut out, self.loss_inv);
        out.push_str(", \"loss_suf\": ");
        push_f64(&mut out, self.loss_suf);
        out.push_str(", \"lambda\": [");
        for (i, &l) in self.lambda.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_f64(&mut out, l);
        }
        out.push_str("], \"grad_norm\": ");
        push_f64(&mut out, self.grad_norm);
        out.push_str(", \"counters\": {");
        for (i, (label, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_str_literal(&mut out, label);
            out.push_str(&format!(": {value}"));
        }
        out.push_str("}, \"eval\": ");
        match &self.eval {
            None => out.push_str("null"),
            Some(ev) => {
                out.push_str("{\"accuracy\": ");
                push_f64(&mut out, ev.accuracy);
                out.push_str(", \"f1\": ");
                push_f64(&mut out, ev.f1);
                out.push_str(", \"delta_sp\": ");
                push_f64(&mut out, ev.delta_sp);
                out.push_str(", \"delta_eo\": ");
                push_f64(&mut out, ev.delta_eo);
                out.push('}');
            }
        }
        out.push('}');
        out
    }
}

/// Collects [`EpochRecord`]s during a fit and writes them as JSON Lines.
///
/// The sink is a plain value (no global state): the trainer appends into
/// whatever sink the caller hands it, and the caller decides where the
/// records go afterwards.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySink {
    records: Vec<EpochRecord>,
}

impl TelemetrySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: EpochRecord) {
        self.records.push(record);
    }

    /// The collected records, in push order.
    pub fn records(&self) -> &[EpochRecord] {
        &self.records
    }

    /// Number of collected records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes every record as one line each (each line terminated by
    /// `\n`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// Writes [`TelemetrySink::to_jsonl`] to `path`, creating parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from directory creation or the file write.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage3_record() -> EpochRecord {
        EpochRecord {
            stage: 3,
            epoch: 4,
            loss_cls: 0.5,
            loss_inv: 0.25,
            loss_suf: 1.5,
            lambda: vec![0.75, 0.25],
            grad_norm: 2.5,
            counters: vec![("tensor/matmul/flops".to_owned(), 1200)],
            eval: Some(EvalMetrics {
                accuracy: 0.7,
                f1: 0.6,
                delta_sp: 0.05,
                delta_eo: 0.04,
            }),
        }
    }

    #[test]
    fn line_layout_is_stable() {
        let expected = concat!(
            "{\"schema_version\": 1, \"stage\": 3, \"epoch\": 4, ",
            "\"loss_cls\": 0.5, \"loss_inv\": 0.25, \"loss_suf\": 1.5, ",
            "\"lambda\": [0.75, 0.25], \"grad_norm\": 2.5, ",
            "\"counters\": {\"tensor/matmul/flops\": 1200}, ",
            "\"eval\": {\"accuracy\": 0.7, \"f1\": 0.6, \"delta_sp\": 0.05, \"delta_eo\": 0.04}}",
        );
        assert_eq!(stage3_record().to_jsonl_line(), expected);
    }

    #[test]
    fn stage2_record_serializes_empties_and_null_eval() {
        let r = EpochRecord {
            stage: 2,
            epoch: 0,
            loss_cls: 0.625,
            loss_inv: 0.0,
            loss_suf: 0.0,
            lambda: Vec::new(),
            grad_norm: 1.25,
            counters: Vec::new(),
            eval: None,
        };
        let line = r.to_jsonl_line();
        assert!(line.contains("\"lambda\": []"), "{line}");
        assert!(line.contains("\"counters\": {}"), "{line}");
        assert!(line.ends_with("\"eval\": null}"), "{line}");
    }

    #[test]
    fn non_finite_losses_become_null_not_invalid_json() {
        let r = EpochRecord {
            loss_cls: f64::NAN,
            grad_norm: f64::INFINITY,
            ..stage3_record()
        };
        let line = r.to_jsonl_line();
        assert!(line.contains("\"loss_cls\": null"), "{line}");
        assert!(line.contains("\"grad_norm\": null"), "{line}");
    }

    #[test]
    fn sink_writes_one_line_per_record() {
        let mut sink = TelemetrySink::new();
        assert!(sink.is_empty());
        sink.push(stage3_record());
        sink.push(stage3_record());
        assert_eq!(sink.len(), 2);
        let body = sink.to_jsonl();
        assert_eq!(body.lines().count(), 2);
        assert!(body.ends_with('\n'));

        let dir = std::env::temp_dir().join("fairwos_obs_telemetry_test");
        let path = dir.join("nested").join("telemetry.jsonl");
        let _ = std::fs::remove_dir_all(&dir);
        sink.write_jsonl(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), body);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
