//! Minimal hand-rolled JSON emission, because this crate takes no
//! dependencies. Only what [`crate::report`] needs: escaped strings and
//! finite-guarded floats, written into a growing `String`.

/// Appends `s` as a JSON string literal, escaping per RFC 8259.
pub(crate) fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number. JSON has no NaN/Infinity, so non-finite
/// values (which the `checked` feature exists to catch much earlier) are
/// emitted as `null` rather than producing an unparseable file.
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly with the shortest representation
        // and never produces a locale-dependent separator.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Appends `n` two-space indentation levels.
pub(crate) fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_non_finite_becomes_null() {
        let mut out = String::new();
        push_f64(&mut out, 1.25);
        out.push(' ');
        push_f64(&mut out, 0.1);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        out.push(' ');
        push_f64(&mut out, f64::INFINITY);
        assert_eq!(out, "1.25 0.1 null null");
    }
}
