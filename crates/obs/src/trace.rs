//! Chrome `trace_event` JSON export of the event journal.
//!
//! The output is the *JSON Object Format* understood by Perfetto and
//! `chrome://tracing`: a top-level object whose `traceEvents` array holds
//! one object per event. Mapping:
//!
//! | journal event      | `ph`  | notes                                    |
//! |--------------------|-------|------------------------------------------|
//! | `SpanBegin`        | `"B"` | duration-begin, `name` = span label      |
//! | `SpanEnd`          | `"E"` | duration-end, closes the innermost `"B"` |
//! | `Epoch`            | `"i"` | instant, `args: {stage, epoch}`          |
//! | `Alert`            | `"i"` | instant, `name` = alert code             |
//! | `CounterSnapshot`  | `"C"` | counter track, `args: {value}`           |
//!
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision kept as three fixed decimals, so the serialization is
//! byte-stable and golden-fixture testable. Events appear in journal push
//! order; per-thread ordering (and thus `"B"`/`"E"` nesting) is preserved
//! because each thread pushes its own events in program order.

use std::io::Write as _;
use std::path::Path;

use crate::event::{Event, TimedEvent};
use crate::json::push_str_literal;

/// Version stamp written into the trace document (top-level
/// `schema_version` field, ignored by trace viewers).
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// Appends `ts_ns` as a microsecond timestamp with three decimals
/// (`1234567` ns → `1234.567`).
fn push_ts(out: &mut String, ts_ns: u64) {
    out.push_str(&format!("{}.{:03}", ts_ns / 1000, ts_ns % 1000));
}

fn push_event(out: &mut String, e: &TimedEvent) {
    let envelope = |out: &mut String, name: &str, cat: &str, ph: &str| {
        out.push_str("{\"name\": ");
        push_str_literal(out, name);
        out.push_str(", \"cat\": ");
        push_str_literal(out, cat);
        out.push_str(&format!(", \"ph\": \"{ph}\", \"ts\": "));
        push_ts(out, e.ts_ns);
        out.push_str(&format!(", \"pid\": 1, \"tid\": {}", e.tid));
    };
    match &e.event {
        Event::SpanBegin { label } => {
            envelope(out, label, "span", "B");
        }
        Event::SpanEnd { label } => {
            envelope(out, label, "span", "E");
        }
        Event::Epoch { stage, epoch } => {
            envelope(out, "train/epoch", "train", "i");
            out.push_str(&format!(
                ", \"s\": \"t\", \"args\": {{\"stage\": {stage}, \"epoch\": {epoch}}}"
            ));
        }
        Event::Alert { code, message } => {
            envelope(out, code, "alert", "i");
            out.push_str(", \"s\": \"g\", \"args\": {\"message\": ");
            push_str_literal(out, message);
            out.push('}');
        }
        Event::CounterSnapshot { label, value } => {
            envelope(out, label, "counter", "C");
            out.push_str(&format!(", \"args\": {{\"value\": {value}}}"));
        }
        Event::Checkpoint { generation, stage, epoch } => {
            envelope(out, "train/checkpoint", "persist", "i");
            out.push_str(&format!(
                ", \"s\": \"t\", \"args\": {{\"generation\": {generation}, \"stage\": {stage}, \
                 \"epoch\": {epoch}}}"
            ));
        }
        Event::Rollback { generation, stage, epoch } => {
            envelope(out, "train/rollback", "persist", "i");
            out.push_str(&format!(
                ", \"s\": \"g\", \"args\": {{\"generation\": {generation}, \"stage\": {stage}, \
                 \"epoch\": {epoch}}}"
            ));
        }
    }
    out.push('}');
}

/// Serializes `events` as a Chrome `trace_event` JSON document (one event
/// per line inside `traceEvents`, trailing newline). The exact bytes are
/// pinned by `tests/golden_trace.rs`.
pub fn trace_json(events: &[TimedEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {TRACE_SCHEMA_VERSION},\n"));
    out.push_str("  \"tool\": \"fairwos-obs\",\n");
    out.push_str("  \"displayTimeUnit\": \"ms\",\n");
    out.push_str("  \"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        out.push_str("\n    ");
        push_event(&mut out, e);
        if i + 1 < events.len() {
            out.push(',');
        }
    }
    if events.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Writes [`trace_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the file write.
pub fn write_trace_json(path: &Path, events: &[TimedEvent]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(trace_json(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ts_ns: u64, tid: u64, event: Event) -> TimedEvent {
        TimedEvent { ts_ns, tid, event }
    }

    #[test]
    fn empty_journal_serializes_as_empty_array() {
        let doc = trace_json(&[]);
        assert!(doc.contains("\"traceEvents\": []\n}"), "{doc}");
        assert!(doc.starts_with("{\n  \"schema_version\": 1,\n"));
    }

    #[test]
    fn span_pair_maps_to_b_and_e_with_microsecond_ts() {
        let doc = trace_json(&[
            at(1_500, 0, Event::SpanBegin { label: "train/stage2/epoch".to_owned() }),
            at(2_501_250, 0, Event::SpanEnd { label: "train/stage2/epoch".to_owned() }),
        ]);
        assert!(
            doc.contains(
                "{\"name\": \"train/stage2/epoch\", \"cat\": \"span\", \"ph\": \"B\", \
                 \"ts\": 1.500, \"pid\": 1, \"tid\": 0}"
            ),
            "{doc}"
        );
        assert!(doc.contains("\"ph\": \"E\", \"ts\": 2501.250"), "{doc}");
    }

    #[test]
    fn instants_and_counters_carry_args() {
        let doc = trace_json(&[
            at(0, 1, Event::Epoch { stage: 3, epoch: 7 }),
            at(10, 1, Event::Alert {
                code: "watchdog/loss_spike".to_owned(),
                message: "loss 9 exceeded baseline".to_owned(),
            }),
            at(20, 1, Event::CounterSnapshot {
                label: "tensor/matmul/flops".to_owned(),
                value: 1234,
            }),
        ]);
        assert!(doc.contains("\"args\": {\"stage\": 3, \"epoch\": 7}"), "{doc}");
        assert!(doc.contains("\"name\": \"watchdog/loss_spike\""), "{doc}");
        assert!(doc.contains("\"args\": {\"message\": \"loss 9 exceeded baseline\"}"), "{doc}");
        assert!(doc.contains("\"ph\": \"C\", \"ts\": 0.020"), "{doc}");
        assert!(doc.contains("\"args\": {\"value\": 1234}"), "{doc}");
    }

    #[test]
    fn checkpoint_and_rollback_are_persist_instants() {
        let doc = trace_json(&[
            at(5, 0, Event::Checkpoint { generation: 3, stage: 2, epoch: 40 }),
            at(9, 0, Event::Rollback { generation: 3, stage: 2, epoch: 40 }),
        ]);
        assert!(
            doc.contains("\"name\": \"train/checkpoint\", \"cat\": \"persist\", \"ph\": \"i\""),
            "{doc}"
        );
        assert!(
            doc.contains("\"args\": {\"generation\": 3, \"stage\": 2, \"epoch\": 40}"),
            "{doc}"
        );
        assert!(doc.contains("\"name\": \"train/rollback\""), "{doc}");
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("fairwos_obs_trace_test");
        let path = dir.join("nested").join("trace.json");
        let _ = std::fs::remove_dir_all(&dir);
        let events = [at(5, 0, Event::Epoch { stage: 1, epoch: 0 })];
        write_trace_json(&path, &events).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, trace_json(&events));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
