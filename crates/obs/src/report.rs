//! The always-compiled metrics schema: [`RunMetrics`] and its JSON
//! serialization. These types exist in both build modes — only the
//! *contents* differ (empty vectors when the `enabled` feature is off) — so
//! harness code never needs feature gates of its own.
//!
//! The JSON layout is a **stable contract**: the golden-snapshot test in
//! `tests/golden_run_metrics.rs` pins it byte-for-byte, and downstream
//! tooling reads `results/bench_pipeline.json` by this schema. Bump
//! [`SCHEMA_VERSION`] on any shape change and regenerate the fixture.

use std::io::Write as _;
use std::path::Path;

use crate::json::{push_f64, push_indent, push_str_literal};

/// Version stamp written into the pipeline file so readers can detect
/// schema drift without guessing from the shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated timings for one span label within a run.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanMetric {
    /// Hierarchical `/`-separated label, e.g. `train/stage2/epoch`.
    pub label: String,
    /// How many guard drops were recorded under this label.
    pub count: u64,
    /// Sum of all recorded wall times, in seconds.
    pub total_secs: f64,
    /// Shortest single recording, in seconds.
    pub min_secs: f64,
    /// Longest single recording, in seconds.
    pub max_secs: f64,
}

/// Accumulated total for one counter label within a run.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterMetric {
    /// Counter label, e.g. `tensor/matmul/flops`.
    pub label: String,
    /// Number of `counter_add` calls under this label.
    pub calls: u64,
    /// Sum of all amounts added under this label.
    pub total: u64,
}

/// Peak value observed for one gauge label within a run.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleMetric {
    /// Gauge label, e.g. `train/nodes`.
    pub label: String,
    /// Maximum value recorded under this label.
    pub max: u64,
}

/// One training run's worth of observability: identity, wall time, and the
/// registry snapshot taken at capture time.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// Method name as the bench harness reports it, e.g. `Fairwos`.
    pub method: String,
    /// Dataset name, e.g. `nba`.
    pub dataset: String,
    /// Backbone name, e.g. `GCN`.
    pub backbone: String,
    /// RNG seed the run used.
    pub seed: u64,
    /// End-to-end wall time of the run in seconds, as measured by the
    /// harness (not derived from spans — it includes uninstrumented work).
    pub wall_secs: f64,
    /// Span aggregates, sorted by label.
    pub spans: Vec<SpanMetric>,
    /// Counter totals, sorted by label.
    pub counters: Vec<CounterMetric>,
    /// Gauge maxima, sorted by label.
    pub scales: Vec<ScaleMetric>,
}

impl RunMetrics {
    /// Snapshots the global registry into a run record.
    ///
    /// With the `enabled` feature this drains nothing — the registry keeps
    /// its state until the next `reset()` — it only copies the aggregates,
    /// sorted by label. Without the feature the three vectors are empty.
    pub fn capture(
        method: &str,
        dataset: &str,
        backbone: &str,
        seed: u64,
        wall_secs: f64,
    ) -> Self {
        #[cfg(feature = "enabled")]
        let (spans, counters, scales) = crate::registry::snapshot();
        #[cfg(not(feature = "enabled"))]
        let (spans, counters, scales) = (Vec::new(), Vec::new(), Vec::new());
        RunMetrics {
            method: method.to_owned(),
            dataset: dataset.to_owned(),
            backbone: backbone.to_owned(),
            seed,
            wall_secs,
            spans,
            counters,
            scales,
        }
    }

    /// Serializes this run as a pretty-printed JSON object (two-space
    /// indent, trailing newline). The exact bytes are pinned by the golden
    /// fixture test.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_json(&self, out: &mut String, indent: usize) {
        let field = |out: &mut String, name: &str| {
            push_indent(out, indent + 1);
            push_str_literal(out, name);
            out.push_str(": ");
        };
        out.push_str("{\n");
        field(out, "method");
        push_str_literal(out, &self.method);
        out.push_str(",\n");
        field(out, "dataset");
        push_str_literal(out, &self.dataset);
        out.push_str(",\n");
        field(out, "backbone");
        push_str_literal(out, &self.backbone);
        out.push_str(",\n");
        field(out, "seed");
        out.push_str(&self.seed.to_string());
        out.push_str(",\n");
        field(out, "wall_secs");
        push_f64(out, self.wall_secs);
        out.push_str(",\n");

        field(out, "spans");
        write_array(out, indent + 1, &self.spans, |out, s| {
            out.push_str("{ \"label\": ");
            push_str_literal(out, &s.label);
            out.push_str(&format!(", \"count\": {}", s.count));
            out.push_str(", \"total_secs\": ");
            push_f64(out, s.total_secs);
            out.push_str(", \"min_secs\": ");
            push_f64(out, s.min_secs);
            out.push_str(", \"max_secs\": ");
            push_f64(out, s.max_secs);
            out.push_str(" }");
        });
        out.push_str(",\n");

        field(out, "counters");
        write_array(out, indent + 1, &self.counters, |out, c| {
            out.push_str("{ \"label\": ");
            push_str_literal(out, &c.label);
            out.push_str(&format!(", \"calls\": {}, \"total\": {} }}", c.calls, c.total));
        });
        out.push_str(",\n");

        field(out, "scales");
        write_array(out, indent + 1, &self.scales, |out, s| {
            out.push_str("{ \"label\": ");
            push_str_literal(out, &s.label);
            out.push_str(&format!(", \"max\": {} }}", s.max));
        });
        out.push('\n');
        push_indent(out, indent);
        out.push('}');
    }
}

fn write_array<T>(
    out: &mut String,
    indent: usize,
    items: &[T],
    write_item: impl Fn(&mut String, &T),
) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push_str("[\n");
    for (i, item) in items.iter().enumerate() {
        push_indent(out, indent + 1);
        write_item(out, item);
        if i + 1 < items.len() {
            out.push(',');
        }
        out.push('\n');
    }
    push_indent(out, indent);
    out.push(']');
}

/// Serializes a batch of runs as the `results/bench_pipeline.json` document:
/// `{"schema_version": …, "tool": "fairwos-obs", "runs": […]}`.
pub fn pipeline_json(runs: &[RunMetrics]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    push_indent(&mut out, 1);
    out.push_str(&format!("\"schema_version\": {SCHEMA_VERSION},\n"));
    push_indent(&mut out, 1);
    out.push_str("\"tool\": \"fairwos-obs\",\n");
    push_indent(&mut out, 1);
    out.push_str("\"runs\": ");
    if runs.is_empty() {
        out.push_str("[]");
    } else {
        out.push_str("[\n");
        for (i, run) in runs.iter().enumerate() {
            push_indent(&mut out, 2);
            run.write_json(&mut out, 2);
            if i + 1 < runs.len() {
                out.push(',');
            }
            out.push('\n');
        }
        push_indent(&mut out, 1);
        out.push(']');
    }
    out.push_str("\n}\n");
    out
}

/// Writes [`pipeline_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the file write.
pub fn write_pipeline_json(path: &Path, runs: &[RunMetrics]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(pipeline_json(runs).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunMetrics {
        RunMetrics {
            method: "Fairwos".to_owned(),
            dataset: "nba".to_owned(),
            backbone: "GCN".to_owned(),
            seed: 2025,
            wall_secs: 1.25,
            spans: vec![SpanMetric {
                label: "train/stage1_encoder".to_owned(),
                count: 1,
                total_secs: 0.5,
                min_secs: 0.5,
                max_secs: 0.5,
            }],
            counters: vec![CounterMetric {
                label: "tensor/matmul/flops".to_owned(),
                calls: 3,
                total: 600,
            }],
            scales: vec![ScaleMetric { label: "train/nodes".to_owned(), max: 403 }],
        }
    }

    #[test]
    fn run_json_has_the_pinned_shape() {
        let expected = concat!(
            "{\n",
            "  \"method\": \"Fairwos\",\n",
            "  \"dataset\": \"nba\",\n",
            "  \"backbone\": \"GCN\",\n",
            "  \"seed\": 2025,\n",
            "  \"wall_secs\": 1.25,\n",
            "  \"spans\": [\n",
            "    { \"label\": \"train/stage1_encoder\", \"count\": 1, \"total_secs\": 0.5, ",
            "\"min_secs\": 0.5, \"max_secs\": 0.5 }\n",
            "  ],\n",
            "  \"counters\": [\n",
            "    { \"label\": \"tensor/matmul/flops\", \"calls\": 3, \"total\": 600 }\n",
            "  ],\n",
            "  \"scales\": [\n",
            "    { \"label\": \"train/nodes\", \"max\": 403 }\n",
            "  ]\n",
            "}\n",
        );
        assert_eq!(sample().to_json(), expected);
    }

    #[test]
    fn empty_vectors_serialize_as_empty_arrays() {
        let rm = RunMetrics {
            spans: Vec::new(),
            counters: Vec::new(),
            scales: Vec::new(),
            ..sample()
        };
        let json = rm.to_json();
        assert!(json.contains("\"spans\": [],\n"), "{json}");
        assert!(json.contains("\"counters\": [],\n"), "{json}");
        assert!(json.contains("\"scales\": []\n"), "{json}");
    }

    #[test]
    fn pipeline_document_wraps_runs_with_version_and_tool() {
        let doc = pipeline_json(&[sample(), sample()]);
        assert!(doc.starts_with("{\n  \"schema_version\": 1,\n  \"tool\": \"fairwos-obs\",\n"));
        assert_eq!(doc.matches("\"method\": \"Fairwos\"").count(), 2);
        assert!(doc.ends_with("]\n}\n"), "{doc}");
        let empty = pipeline_json(&[]);
        assert!(empty.contains("\"runs\": []\n}"), "{empty}");
    }

    #[test]
    fn write_creates_parent_directories() {
        let dir = std::env::temp_dir().join("fairwos_obs_report_test");
        let path = dir.join("nested").join("pipeline.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_pipeline_json(&path, &[sample()]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, pipeline_json(&[sample()]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
