//! The event journal's data model: typed events, their timestamped
//! envelope, and the bounded ring buffer that stores them.
//!
//! Everything here is always compiled (no feature gate) so harness and
//! exporter code can name the types in both build modes; only the *global*
//! journal that fills a ring lives behind the `enabled` feature (in
//! `registry.rs`). The ring itself is a plain value type, which keeps it
//! directly testable — `tests/proptest_ring.rs` drives it without touching
//! any process state.

use std::collections::VecDeque;

/// Default capacity of the global journal ring: enough for several thousand
/// epochs of span/epoch/counter events without unbounded memory growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// One typed journal event (the payload of a [`TimedEvent`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A span guard was created under `label` (timeline "B" edge).
    SpanBegin {
        /// The span's hierarchical `/`-separated label.
        label: String,
    },
    /// The span guard for `label` dropped (timeline "E" edge).
    SpanEnd {
        /// The span's hierarchical `/`-separated label.
        label: String,
    },
    /// A training epoch boundary.
    Epoch {
        /// Training stage: 1 = encoder, 2 = classifier, 3 = fine-tuning.
        stage: u8,
        /// 0-based epoch index within the stage.
        epoch: u64,
    },
    /// A health alert, e.g. from the divergence watchdog.
    Alert {
        /// Short machine-readable code, e.g. `watchdog/loss_spike`.
        code: String,
        /// Human-readable explanation.
        message: String,
    },
    /// A point-in-time counter reading (cumulative total, not a delta), so
    /// the trace viewer can render counter tracks over the run.
    CounterSnapshot {
        /// Counter label, e.g. `tensor/matmul/flops`.
        label: String,
        /// Cumulative counter total at the time of the snapshot.
        value: u64,
    },
    /// A training checkpoint was durably written.
    Checkpoint {
        /// Monotonic checkpoint generation number (1-based).
        generation: u64,
        /// Training stage the checkpoint resumes into (2 or 3).
        stage: u8,
        /// 0-based epoch within the stage the checkpoint resumes at.
        epoch: u64,
    },
    /// Training rolled back to a checkpoint (divergence recovery) or
    /// restarted from one after a crash.
    Rollback {
        /// Generation rolled back to (0 = fresh restart, no checkpoint).
        generation: u64,
        /// Training stage the rollback resumes into (0 = from scratch).
        stage: u8,
        /// 0-based epoch within the stage the rollback resumes at.
        epoch: u64,
    },
}

/// An [`Event`] stamped with its time and originating thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Nanoseconds since the process-wide journal epoch. The epoch is a
    /// monotonic [`std::time::Instant`] anchored on first use and never
    /// re-anchored, so timestamps are comparable across the whole process
    /// lifetime (including across `reset()` calls).
    pub ts_ns: u64,
    /// Dense per-process thread id (assigned in first-recording order,
    /// starting at 0) — *not* the OS thread id.
    pub tid: u64,
    /// The event payload.
    pub event: Event,
}

/// A bounded FIFO event buffer: once `capacity` events are held, each push
/// evicts the oldest event first. The buffer never holds more than
/// `capacity` events, so a journal left armed for an arbitrarily long run
/// has bounded memory.
#[derive(Clone, Debug)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<TimedEvent>,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events are currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events have been evicted (oldest-first) since the last
    /// [`EventRing::clear`].
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends `event`, evicting the oldest event if the ring is full.
    pub fn push(&mut self, event: TimedEvent) {
        while self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Changes the capacity (clamped to ≥ 1), evicting oldest events if the
    /// new capacity is smaller than the current length.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.events.len() > self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Copies the retained events in push order (oldest first).
    pub fn snapshot(&self) -> Vec<TimedEvent> {
        self.events.iter().cloned().collect()
    }

    /// Removes every event and zeroes the dropped-event count. Capacity is
    /// unchanged.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64) -> TimedEvent {
        TimedEvent {
            ts_ns,
            tid: 0,
            event: Event::Epoch { stage: 2, epoch: ts_ns },
        }
    }

    #[test]
    fn push_within_capacity_keeps_everything_in_order() {
        let mut ring = EventRing::new(4);
        for t in 0..4 {
            ring.push(ev(t));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn overflow_evicts_oldest_first_and_never_exceeds_capacity() {
        let mut ring = EventRing::new(3);
        for t in 0..10 {
            ring.push(ev(t));
            assert!(ring.len() <= 3);
        }
        assert_eq!(ring.dropped(), 7);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![7, 8, 9], "the newest events must survive");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].ts_ns, 2);
    }

    #[test]
    fn shrinking_capacity_drops_oldest() {
        let mut ring = EventRing::new(5);
        for t in 0..5 {
            ring.push(ev(t));
        }
        ring.set_capacity(2);
        let ts: Vec<u64> = ring.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![3, 4]);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn clear_empties_and_resets_dropped() {
        let mut ring = EventRing::new(2);
        for t in 0..5 {
            ring.push(ev(t));
        }
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.capacity(), 2);
    }
}
