//! The armed instrumentation backend, compiled only with the `enabled`
//! feature: a process-global, mutex-guarded set of aggregation tables.
//!
//! A single coarse `Mutex` is deliberate. The hot kernels record once per
//! *kernel call* (a full matmul, a full SPMM), not per element, so the lock
//! is taken a few thousand times per training run — nanoseconds of
//! contention against milliseconds of math. `BTreeMap` keys keep every
//! snapshot deterministically ordered, which the golden-fixture test and the
//! stable `bench_pipeline.json` schema rely on.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::report::{CounterMetric, ScaleMetric, SpanMetric};

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

#[derive(Default)]
struct CounterAgg {
    calls: u64,
    total: u64,
}

#[derive(Default)]
struct Tables {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, CounterAgg>,
    scales: BTreeMap<String, u64>,
}

fn tables() -> &'static Mutex<Tables> {
    static TABLES: OnceLock<Mutex<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| Mutex::new(Tables::default()))
}

fn with_tables<R>(f: impl FnOnce(&mut Tables) -> R) -> R {
    // A panic while holding this lock poisons it, but the tables hold plain
    // aggregates that are never left half-updated, so recording into a
    // poisoned registry is safe — observability must not turn one panic
    // into a cascade.
    let mut guard = tables().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// Live span: wall time runs from [`span`] until this guard drops.
///
/// The lifetime ties the guard to its label so labels can be borrowed
/// `&'static str` literals or locally-formatted strings alike.
#[must_use = "a span measures until the guard drops; bind it with `let _s = ...`"]
pub struct SpanGuard<'a> {
    label: &'a str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        with_tables(|t| {
            let agg = t.spans.entry(self.label.to_owned()).or_default();
            if agg.count == 0 || elapsed < agg.min_ns {
                agg.min_ns = elapsed;
            }
            if elapsed > agg.max_ns {
                agg.max_ns = elapsed;
            }
            agg.count += 1;
            agg.total_ns += elapsed;
        });
    }
}

/// Starts a span: wall time is measured until the returned guard drops.
///
/// Repeated spans under the same label aggregate into one
/// count/total/min/max row. Nesting is expressed purely through label
/// convention (`train/stage2` contains `train/stage2/epoch`); the registry
/// itself is flat.
pub fn span(label: &str) -> SpanGuard<'_> {
    SpanGuard { label, start: Instant::now() }
}

/// Adds `amount` to the counter `label` and bumps its call count.
///
/// Kernels report one unit that is meaningful for them: multiply-add FLOPs
/// for the matmul family, nnz×cols fused multiply-adds for SPMM, bytes for
/// the matrix allocator.
pub fn counter_add(label: &str, amount: u64) {
    with_tables(|t| {
        let agg = t.counters.entry(label.to_owned()).or_default();
        agg.calls += 1;
        agg.total += amount;
    });
}

/// Records `value` for gauge `label`, keeping the per-run maximum.
pub fn scale_max(label: &str, value: u64) {
    with_tables(|t| {
        let slot = t.scales.entry(label.to_owned()).or_default();
        if value > *slot {
            *slot = value;
        }
    });
}

/// Clears every table. Harnesses call this at the start of each run so a
/// subsequent [`crate::RunMetrics::capture`] sees only that run.
pub fn reset() {
    with_tables(|t| {
        t.spans.clear();
        t.counters.clear();
        t.scales.clear();
    });
}

const NANOS_PER_SEC: f64 = 1e9;

/// Snapshots the registry into the report types, sorted by label.
pub(crate) fn snapshot() -> (Vec<SpanMetric>, Vec<CounterMetric>, Vec<ScaleMetric>) {
    with_tables(|t| {
        let spans = t
            .spans
            .iter()
            .map(|(label, a)| SpanMetric {
                label: label.clone(),
                count: a.count,
                total_secs: a.total_ns as f64 / NANOS_PER_SEC,
                min_secs: a.min_ns as f64 / NANOS_PER_SEC,
                max_secs: a.max_ns as f64 / NANOS_PER_SEC,
            })
            .collect();
        let counters = t
            .counters
            .iter()
            .map(|(label, a)| CounterMetric {
                label: label.clone(),
                calls: a.calls,
                total: a.total,
            })
            .collect();
        let scales = t
            .scales
            .iter()
            .map(|(label, &max)| ScaleMetric { label: label.clone(), max })
            .collect();
        (spans, counters, scales)
    })
}
