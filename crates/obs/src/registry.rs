//! The armed instrumentation backend, compiled only with the `enabled`
//! feature: a process-global, mutex-guarded set of aggregation tables.
//!
//! A single coarse `Mutex` is deliberate. The hot kernels record once per
//! *kernel call* (a full matmul, a full SPMM), not per element, so the lock
//! is taken a few thousand times per training run — nanoseconds of
//! contention against milliseconds of math. `BTreeMap` keys keep every
//! snapshot deterministically ordered, which the golden-fixture test and the
//! stable `bench_pipeline.json` schema rely on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::event::{Event, EventRing, TimedEvent, DEFAULT_JOURNAL_CAPACITY};
use crate::report::{CounterMetric, ScaleMetric, SpanMetric};
use crate::snapshot::{GaugeMetric, JournalStats};

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

#[derive(Default)]
struct CounterAgg {
    calls: u64,
    total: u64,
}

#[derive(Default)]
struct Tables {
    spans: BTreeMap<String, SpanAgg>,
    counters: BTreeMap<String, CounterAgg>,
    scales: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

fn tables() -> &'static Mutex<Tables> {
    static TABLES: OnceLock<Mutex<Tables>> = OnceLock::new();
    TABLES.get_or_init(|| Mutex::new(Tables::default()))
}

fn with_tables<R>(f: impl FnOnce(&mut Tables) -> R) -> R {
    // A panic while holding this lock poisons it, but the tables hold plain
    // aggregates that are never left half-updated, so recording into a
    // poisoned registry is safe — observability must not turn one panic
    // into a cascade.
    let mut guard = tables().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

// ---------------------------------------------------------------------------
// The event journal: a second global, independently locked, holding the
// bounded ring of timeline events. Its lock is never taken while the tables
// lock is held (and vice versa), so the two can never deadlock.
// ---------------------------------------------------------------------------

fn journal() -> &'static Mutex<EventRing> {
    static JOURNAL: OnceLock<Mutex<EventRing>> = OnceLock::new();
    JOURNAL.get_or_init(|| Mutex::new(EventRing::new(DEFAULT_JOURNAL_CAPACITY)))
}

fn with_journal<R>(f: impl FnOnce(&mut EventRing) -> R) -> R {
    // Same poison policy as the tables: the ring is never half-updated.
    let mut guard = journal().lock().unwrap_or_else(PoisonError::into_inner);
    f(&mut guard)
}

/// The process-wide journal epoch: anchored at the first timestamped event
/// and never re-anchored, so `ts_ns` stays monotonic and comparable across
/// `reset()` boundaries.
fn journal_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the process-wide journal anchor.
///
/// This is the sanctioned monotonic clock for instrumented subsystems that
/// need raw timestamps (e.g. `fairwos-serve` latency histograms) without
/// owning an `Instant` of their own — the audit lint FW005 confines
/// `Instant::now()` to this crate. Values are comparable with the `ts_ns`
/// field of journal events because both share the same anchor.
pub fn monotonic_ns() -> u64 {
    journal_anchor().elapsed().as_nanos() as u64
}

/// Dense per-process thread id, assigned in first-recording order.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Stamps `event` with the monotonic journal time and the calling thread's
/// dense id, then appends it to the ring (evicting oldest-first when full).
pub fn journal_record(event: Event) {
    let ts_ns = journal_anchor().elapsed().as_nanos() as u64;
    let tid = current_tid();
    with_journal(|j| j.push(TimedEvent { ts_ns, tid, event }));
}

/// Records a training-epoch boundary event (stage 1/2/3, 0-based epoch).
pub fn journal_epoch(stage: u8, epoch: u64) {
    journal_record(Event::Epoch { stage, epoch });
}

/// Records an alert event (e.g. a watchdog trigger): `code` is the short
/// machine-readable identifier, `message` the human-readable detail.
pub fn journal_alert(code: &str, message: &str) {
    journal_record(Event::Alert {
        code: code.to_owned(),
        message: message.to_owned(),
    });
}

/// Records a point-in-time counter reading (cumulative total).
pub fn journal_counter_snapshot(label: &str, value: u64) {
    journal_record(Event::CounterSnapshot { label: label.to_owned(), value });
}

/// Records a durably written training checkpoint (generation, and the
/// stage/epoch it resumes into).
pub fn journal_checkpoint(generation: u64, stage: u8, epoch: u64) {
    journal_record(Event::Checkpoint { generation, stage, epoch });
}

/// Records a rollback/restart onto checkpoint `generation` (0 for a fresh
/// restart with no valid checkpoint).
pub fn journal_rollback(generation: u64, stage: u8, epoch: u64) {
    journal_record(Event::Rollback { generation, stage, epoch });
}

/// Copies the journal's retained events in push order (oldest first).
pub fn journal_events() -> Vec<TimedEvent> {
    with_journal(|j| j.snapshot())
}

/// Resizes the journal ring (clamped to ≥ 1), evicting oldest events if
/// shrinking below the current length. Harnesses call this before a run
/// whose event volume exceeds [`DEFAULT_JOURNAL_CAPACITY`].
pub fn set_journal_capacity(capacity: usize) {
    with_journal(|j| j.set_capacity(capacity));
}

/// Live span: wall time runs from [`span`] until this guard drops.
///
/// The lifetime ties the guard to its label so labels can be borrowed
/// `&'static str` literals or locally-formatted strings alike.
#[must_use = "a span measures until the guard drops; bind it with `let _s = ...`"]
pub struct SpanGuard<'a> {
    label: &'a str,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos();
        journal_record(Event::SpanEnd { label: self.label.to_owned() });
        with_tables(|t| {
            let agg = t.spans.entry(self.label.to_owned()).or_default();
            if agg.count == 0 || elapsed < agg.min_ns {
                agg.min_ns = elapsed;
            }
            if elapsed > agg.max_ns {
                agg.max_ns = elapsed;
            }
            agg.count += 1;
            agg.total_ns += elapsed;
        });
    }
}

/// Starts a span: wall time is measured until the returned guard drops.
///
/// Repeated spans under the same label aggregate into one
/// count/total/min/max row. Nesting is expressed purely through label
/// convention (`train/stage2` contains `train/stage2/epoch`); the registry
/// itself is flat.
pub fn span(label: &str) -> SpanGuard<'_> {
    // The begin event is journaled *before* timing starts, so the journal
    // write does not count against the span's own measured duration.
    journal_record(Event::SpanBegin { label: label.to_owned() });
    SpanGuard { label, start: Instant::now() }
}

/// Adds `amount` to the counter `label` and bumps its call count.
///
/// Kernels report one unit that is meaningful for them: multiply-add FLOPs
/// for the matmul family, nnz×cols fused multiply-adds for SPMM, bytes for
/// the matrix allocator.
pub fn counter_add(label: &str, amount: u64) {
    with_tables(|t| {
        let agg = t.counters.entry(label.to_owned()).or_default();
        agg.calls += 1;
        agg.total += amount;
    });
}

/// Records `value` for gauge `label`, keeping the per-run maximum.
pub fn scale_max(label: &str, value: u64) {
    with_tables(|t| {
        let slot = t.scales.entry(label.to_owned()).or_default();
        if value > *slot {
            *slot = value;
        }
    });
}

/// Sets the last-value gauge `label` to `value`, overwriting any previous
/// reading.
///
/// Unlike [`scale_max`], which ratchets and therefore can never show a
/// quantity *improving* (a single latency spike pins the gauge forever), a
/// last-value gauge tracks the current state of the world — the right kind
/// for anything a live scraper watches: latency quantiles, queue depths,
/// fairness drift estimates.
pub fn gauge_set(label: &str, value: u64) {
    with_tables(|t| {
        t.gauges.insert(label.to_owned(), value);
    });
}

/// Clears every table *and* the event journal. Harnesses call this at the
/// start of each run so a subsequent [`crate::RunMetrics::capture`] (or
/// [`journal_events`] export) sees only that run. The journal's capacity
/// and the timestamp anchor survive the reset.
pub fn reset() {
    with_tables(|t| {
        t.spans.clear();
        t.counters.clear();
        t.scales.clear();
        t.gauges.clear();
    });
    with_journal(EventRing::clear);
}

/// Current `(label, cumulative total)` of every counter, sorted by label.
/// The trainer's telemetry layer diffs consecutive snapshots into per-epoch
/// counter deltas.
pub fn counter_totals() -> Vec<(String, u64)> {
    with_tables(|t| {
        t.counters
            .iter()
            .map(|(label, a)| (label.clone(), a.total))
            .collect()
    })
}

/// Point-in-time occupancy of the event journal: retained events, evictions
/// since the last [`reset`], and the ring's capacity. This is how silent
/// journal truncation (oldest-first eviction under event pressure) becomes
/// visible to a metrics scraper.
pub fn journal_stats() -> JournalStats {
    with_journal(|j| JournalStats {
        len: j.len() as u64,
        dropped: j.dropped(),
        capacity: j.capacity() as u64,
    })
}

/// Current `(label, value)` of every last-value gauge, sorted by label.
pub fn gauge_values() -> Vec<GaugeMetric> {
    with_tables(|t| {
        t.gauges
            .iter()
            .map(|(label, &value)| GaugeMetric { label: label.clone(), value })
            .collect()
    })
}

const NANOS_PER_SEC: f64 = 1e9;

/// Snapshots the registry into the report types, sorted by label.
pub(crate) fn snapshot() -> (Vec<SpanMetric>, Vec<CounterMetric>, Vec<ScaleMetric>) {
    with_tables(|t| {
        let spans = t
            .spans
            .iter()
            .map(|(label, a)| SpanMetric {
                label: label.clone(),
                count: a.count,
                total_secs: a.total_ns as f64 / NANOS_PER_SEC,
                min_secs: a.min_ns as f64 / NANOS_PER_SEC,
                max_secs: a.max_ns as f64 / NANOS_PER_SEC,
            })
            .collect();
        let counters = t
            .counters
            .iter()
            .map(|(label, a)| CounterMetric {
                label: label.clone(),
                calls: a.calls,
                total: a.total,
            })
            .collect();
        let scales = t
            .scales
            .iter()
            .map(|(label, &max)| ScaleMetric { label: label.clone(), max })
            .collect();
        (spans, counters, scales)
    })
}
