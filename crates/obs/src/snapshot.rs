//! [`MetricsSnapshot`] — the live-telemetry export of the whole registry.
//!
//! [`crate::RunMetrics`] is the *post-hoc* view: one training run's
//! aggregates, captured after the run ends and written to a results file.
//! A deployed serving process needs the *live* view instead: everything the
//! registry currently holds — spans, counters, ratchet scales, last-value
//! gauges — **plus** the event journal's occupancy, so that oldest-first
//! eviction (silent truncation of the timeline) is a scrapeable number
//! rather than an invisible loss. `MetricsSnapshot::capture` is that view;
//! [`crate::prometheus_text`] renders it in Prometheus text exposition for
//! the `fairwos-serve` admin endpoint's `GET /metrics`.
//!
//! Like every schema type in this crate, the structs compile in both build
//! modes; without the `enabled` feature `capture()` returns an empty
//! snapshot (all vectors empty, journal stats zero).

use crate::report::{CounterMetric, ScaleMetric, SpanMetric};

/// Current value of one last-value gauge (set via [`crate::gauge_set`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GaugeMetric {
    /// Gauge label, e.g. `serve/latency/p50_ns`.
    pub label: String,
    /// Most recently written value.
    pub value: u64,
}

/// Occupancy of the bounded event journal at capture time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Events currently retained in the ring.
    pub len: u64,
    /// Events evicted oldest-first since the last `reset()` — nonzero means
    /// the journal has silently truncated its own history.
    pub dropped: u64,
    /// Maximum events the ring retains.
    pub capacity: u64,
}

/// A point-in-time copy of the whole registry plus journal occupancy,
/// every vector sorted by label (the registry's `BTreeMap` order), so two
/// captures of the same state render byte-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Span aggregates, sorted by label.
    pub spans: Vec<SpanMetric>,
    /// Counter totals, sorted by label.
    pub counters: Vec<CounterMetric>,
    /// Ratchet-gauge maxima ([`crate::scale_max`]), sorted by label.
    pub scales: Vec<ScaleMetric>,
    /// Last-value gauges ([`crate::gauge_set`]), sorted by label.
    pub gauges: Vec<GaugeMetric>,
    /// Event-journal occupancy, including the eviction (drop) counter.
    pub journal: JournalStats,
}

impl MetricsSnapshot {
    /// Copies the global registry and journal stats. Nothing is drained:
    /// the registry keeps every aggregate until the next `reset()`, so
    /// consecutive captures are monotone in counters and journal drops.
    ///
    /// Without the `enabled` feature the snapshot is empty.
    pub fn capture() -> Self {
        #[cfg(feature = "enabled")]
        {
            let (spans, counters, scales) = crate::registry::snapshot();
            MetricsSnapshot {
                spans,
                counters,
                scales,
                gauges: crate::registry::gauge_values(),
                journal: crate::registry::journal_stats(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            MetricsSnapshot::default()
        }
    }
}

// Armed-mode semantics (last-value vs max, journal drop visibility) are
// pinned in `tests/registry_semantics.rs`, whose file-local mutex
// serializes them against the process-global registry; unit tests here
// would race the lib tests sharing this process.
#[cfg(all(test, not(feature = "enabled")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_capture_is_empty() {
        crate::gauge_set("snap_test/gauge", 2);
        crate::counter_add("snap_test/counter", 3);
        assert_eq!(MetricsSnapshot::capture(), MetricsSnapshot::default());
    }
}
