//! The divergence watchdog: a per-epoch health policy that turns silent
//! numerical blow-ups (NaN loss, exploding gradients, λ leaving the
//! simplex) into a typed verdict the trainer can surface as an error.
//!
//! The watchdog is always compiled — divergence detection is a correctness
//! feature, not an observability nicety, so it must work without the
//! `enabled` feature. It holds no global state: the trainer owns one
//! [`Watchdog`] per training stage (loss scales differ across stages, so a
//! shared trailing window would compare apples to oranges).

use std::collections::VecDeque;
use std::fmt;

/// Thresholds of the divergence watchdog. The defaults are deliberately
/// loose: the watchdog exists to catch *blow-ups*, not to police normal
/// loss noise, so every trigger sits orders of magnitude beyond healthy
/// training dynamics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogPolicy {
    /// A loss above `spike_factor ×` the trailing-window minimum (clamped
    /// below by `loss_floor`) counts as a spike.
    pub spike_factor: f64,
    /// How many recent finite losses the trailing window holds.
    pub window: usize,
    /// A gradient norm above this (or non-finite) counts as an explosion.
    pub grad_limit: f64,
    /// Slack for the λ feasibility check: each λᵢ must lie in
    /// `[-tol, 1 + tol]` and Σλ must be within `tol` of 1.
    pub lambda_tol: f64,
    /// Lower clamp on the spike baseline, so a near-zero early loss does
    /// not turn ordinary fluctuation into a spike.
    pub loss_floor: f64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        Self {
            spike_factor: 50.0,
            window: 10,
            grad_limit: 1e6,
            lambda_tol: 1e-3,
            loss_floor: 1e-3,
        }
    }
}

/// Why the watchdog declared a run divergent.
#[derive(Clone, Debug, PartialEq)]
pub enum Divergence {
    /// The epoch's total loss was NaN or infinite.
    NonFiniteLoss {
        /// The offending loss value.
        loss: f64,
    },
    /// The loss jumped beyond `factor ×` the trailing-window baseline.
    LossSpike {
        /// The offending loss value.
        loss: f64,
        /// The trailing-window minimum it was compared against.
        baseline: f64,
        /// The configured spike factor.
        factor: f64,
    },
    /// The gradient norm exceeded the limit (or was non-finite).
    GradientExplosion {
        /// The offending gradient norm.
        grad_norm: f64,
        /// The configured limit.
        limit: f64,
    },
    /// λ left its feasible range (the probability simplex, within
    /// tolerance).
    LambdaOutOfRange {
        /// What exactly was infeasible about λ.
        detail: String,
    },
}

impl Divergence {
    /// Short machine-readable code, used as the journal [`Alert`] code and
    /// as the trace event name.
    ///
    /// [`Alert`]: crate::Event::Alert
    pub fn code(&self) -> &'static str {
        match self {
            Divergence::NonFiniteLoss { .. } => "watchdog/non_finite_loss",
            Divergence::LossSpike { .. } => "watchdog/loss_spike",
            Divergence::GradientExplosion { .. } => "watchdog/gradient_explosion",
            Divergence::LambdaOutOfRange { .. } => "watchdog/lambda_out_of_range",
        }
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::NonFiniteLoss { loss } => {
                write!(f, "training loss became non-finite ({loss})")
            }
            Divergence::LossSpike { loss, baseline, factor } => write!(
                f,
                "loss {loss} exceeded {factor}× the trailing-window baseline {baseline}"
            ),
            Divergence::GradientExplosion { grad_norm, limit } => {
                write!(f, "gradient norm {grad_norm} exceeded the limit {limit}")
            }
            Divergence::LambdaOutOfRange { detail } => {
                write!(f, "λ left its feasible range: {detail}")
            }
        }
    }
}

/// True when `lambda` is a valid probability-simplex point within `tol`:
/// every entry finite and in `[-tol, 1 + tol]`, and Σλ within `tol` of 1.
pub fn lambda_in_simplex(lambda: &[f32], tol: f64) -> bool {
    lambda_violation(lambda, tol).is_none()
}

/// The first feasibility violation in `lambda`, if any (see
/// [`lambda_in_simplex`] for the predicate).
fn lambda_violation(lambda: &[f32], tol: f64) -> Option<String> {
    if lambda.is_empty() {
        return Some("λ is empty".to_owned());
    }
    let mut sum = 0.0f64;
    for (i, &l) in lambda.iter().enumerate() {
        let l = f64::from(l);
        if !l.is_finite() {
            return Some(format!("λ[{i}] = {l} is not finite"));
        }
        if l < -tol || l > 1.0 + tol {
            return Some(format!("λ[{i}] = {l} lies outside [0, 1] by more than {tol}"));
        }
        sum += l;
    }
    if (sum - 1.0).abs() > tol {
        return Some(format!("Σλ = {sum} deviates from 1 by more than {tol}"));
    }
    None
}

/// Stateful per-stage divergence checker: call [`Watchdog::check`] once per
/// epoch with that epoch's total loss, gradient norm, and (during fine-
/// tuning) the current λ.
#[derive(Clone, Debug)]
pub struct Watchdog {
    policy: WatchdogPolicy,
    trailing: VecDeque<f64>,
}

impl Watchdog {
    /// A fresh watchdog (empty trailing window) under `policy`.
    pub fn new(policy: WatchdogPolicy) -> Self {
        Self { policy, trailing: VecDeque::new() }
    }

    /// The policy this watchdog enforces.
    pub fn policy(&self) -> &WatchdogPolicy {
        &self.policy
    }

    /// The trailing window of healthy losses, oldest first — exported so a
    /// training checkpoint can persist the spike baseline and a resumed run
    /// reproduces the uninterrupted run's verdicts exactly.
    pub fn export_window(&self) -> Vec<f64> {
        self.trailing.iter().copied().collect()
    }

    /// Replaces the trailing window with `window` (oldest first), keeping
    /// only the most recent `policy.window` entries — the same bound
    /// [`Watchdog::check`] enforces.
    pub fn restore_window(&mut self, window: &[f64]) {
        self.trailing.clear();
        let keep = self.policy.window.max(1);
        let skip = window.len().saturating_sub(keep);
        self.trailing.extend(window.iter().skip(skip).copied());
    }

    /// Checks one epoch. Returns the first violated trigger, or `None` when
    /// healthy — in which case `loss` joins the trailing window (bounded at
    /// `policy.window` entries, oldest evicted first). A divergent epoch's
    /// loss never enters the window, so the baseline stays meaningful.
    ///
    /// The spike check needs at least one prior healthy epoch — the first
    /// epoch of a stage can never be a spike.
    pub fn check(
        &mut self,
        loss: f64,
        grad_norm: f64,
        lambda: Option<&[f32]>,
    ) -> Option<Divergence> {
        if !loss.is_finite() {
            return Some(Divergence::NonFiniteLoss { loss });
        }
        if !grad_norm.is_finite() || grad_norm > self.policy.grad_limit {
            return Some(Divergence::GradientExplosion {
                grad_norm,
                limit: self.policy.grad_limit,
            });
        }
        if let Some(l) = lambda {
            if let Some(detail) = lambda_violation(l, self.policy.lambda_tol) {
                return Some(Divergence::LambdaOutOfRange { detail });
            }
        }
        if let Some(baseline) = self
            .trailing
            .iter()
            .copied()
            .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.min(v))))
        {
            let baseline = baseline.max(self.policy.loss_floor);
            if loss > self.policy.spike_factor * baseline {
                return Some(Divergence::LossSpike {
                    loss,
                    baseline,
                    factor: self.policy.spike_factor,
                });
            }
        }
        self.trailing.push_back(loss);
        while self.trailing.len() > self.policy.window.max(1) {
            self.trailing.pop_front();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog() -> Watchdog {
        Watchdog::new(WatchdogPolicy::default())
    }

    #[test]
    fn healthy_decreasing_losses_never_trigger() {
        let mut w = dog();
        for e in 0..100 {
            let loss = 0.7 * (0.97f64).powi(e);
            assert_eq!(w.check(loss, 1.0, Some(&[0.5, 0.5])), None, "epoch {e}");
        }
    }

    #[test]
    fn nan_and_infinite_losses_trigger_non_finite() {
        let mut w = dog();
        assert!(matches!(
            w.check(f64::NAN, 1.0, None),
            Some(Divergence::NonFiniteLoss { .. })
        ));
        assert!(matches!(
            w.check(f64::INFINITY, 1.0, None),
            Some(Divergence::NonFiniteLoss { .. })
        ));
    }

    #[test]
    fn spike_beyond_factor_over_window_min_triggers() {
        let mut w = dog();
        assert_eq!(w.check(0.7, 1.0, None), None);
        assert_eq!(w.check(0.6, 1.0, None), None);
        // 0.6 × 50 = 30: a loss of 35 is a spike; 25 is not.
        assert_eq!(w.check(25.0, 1.0, None), None);
        let d = w.check(35_000.0, 1.0, None);
        match d {
            Some(Divergence::LossSpike { loss, baseline, factor }) => {
                assert_eq!(loss, 35_000.0);
                assert_eq!(baseline, 0.6);
                assert_eq!(factor, 50.0);
            }
            other => panic!("expected LossSpike, got {other:?}"),
        }
    }

    #[test]
    fn first_epoch_is_never_a_spike() {
        let mut w = dog();
        assert_eq!(w.check(1e9, 1.0, None), None, "no baseline yet");
    }

    #[test]
    fn divergent_loss_does_not_poison_the_baseline() {
        let mut w = dog();
        assert_eq!(w.check(0.5, 1.0, None), None);
        assert!(w.check(1e6, 1.0, None).is_some());
        // The spike was rejected, so the baseline is still 0.5: a second
        // spike of the same size must still trigger.
        assert!(w.check(1e6, 1.0, None).is_some());
    }

    #[test]
    fn window_eviction_forgets_old_low_losses() {
        let mut w = Watchdog::new(WatchdogPolicy { window: 2, ..WatchdogPolicy::default() });
        assert_eq!(w.check(0.01, 1.0, None), None);
        // Two larger healthy losses evict 0.01 from the window.
        assert_eq!(w.check(0.2, 1.0, None), None);
        assert_eq!(w.check(0.3, 1.0, None), None);
        // Against the evicted 0.01 baseline, 9.0 > 50 × 0.01 would have
        // been a spike; against the live window min of 0.2 it is healthy.
        assert_eq!(w.check(9.0, 1.0, None), None);
    }

    #[test]
    fn tiny_baselines_are_clamped_by_the_loss_floor() {
        let mut w = dog();
        assert_eq!(w.check(1e-9, 1.0, None), None);
        // Baseline clamps to loss_floor = 1e-3, so 0.04 < 50 × 1e-3 = 0.05
        // stays healthy even though it is 4×10⁷ times the previous loss.
        assert_eq!(w.check(0.04, 1.0, None), None);
        assert!(w.check(0.06, 1.0, None).is_some());
    }

    #[test]
    fn gradient_explosion_triggers_on_limit_and_non_finite() {
        let mut w = dog();
        assert_eq!(w.check(0.5, 1e5, None), None);
        assert!(matches!(
            w.check(0.5, 1e7, None),
            Some(Divergence::GradientExplosion { .. })
        ));
        assert!(matches!(
            w.check(0.5, f64::NAN, None),
            Some(Divergence::GradientExplosion { .. })
        ));
    }

    #[test]
    fn lambda_out_of_range_triggers() {
        let mut w = dog();
        assert_eq!(w.check(0.5, 1.0, Some(&[0.25, 0.75])), None);
        // Sum > 1.
        assert!(matches!(
            w.check(0.5, 1.0, Some(&[0.6, 0.6])),
            Some(Divergence::LambdaOutOfRange { .. })
        ));
        // Negative entry.
        assert!(matches!(
            w.check(0.5, 1.0, Some(&[-0.2, 1.2])),
            Some(Divergence::LambdaOutOfRange { .. })
        ));
        // Non-finite entry.
        assert!(matches!(
            w.check(0.5, 1.0, Some(&[f32::NAN, 1.0])),
            Some(Divergence::LambdaOutOfRange { .. })
        ));
        // Empty λ.
        assert!(matches!(
            w.check(0.5, 1.0, Some(&[])),
            Some(Divergence::LambdaOutOfRange { .. })
        ));
    }

    #[test]
    fn lambda_in_simplex_accepts_float_noise() {
        assert!(lambda_in_simplex(&[0.5000001, 0.4999999], 1e-3));
        assert!(lambda_in_simplex(&[1.0], 1e-3));
        assert!(!lambda_in_simplex(&[0.5, 0.6], 1e-3));
    }

    #[test]
    fn window_roundtrip_reproduces_verdicts() {
        let mut w = dog();
        assert_eq!(w.check(0.7, 1.0, None), None);
        assert_eq!(w.check(0.4, 1.0, None), None);
        let mut twin = dog();
        twin.restore_window(&w.export_window());
        // Same verdict on the next epoch, spike or healthy.
        assert_eq!(w.check(25.0, 1.0, None), twin.check(25.0, 1.0, None));
        assert_eq!(w.check(1e5, 1.0, None), twin.check(1e5, 1.0, None));
    }

    #[test]
    fn restore_window_clamps_to_policy_length() {
        let mut w = Watchdog::new(WatchdogPolicy { window: 2, ..WatchdogPolicy::default() });
        w.restore_window(&[0.01, 0.2, 0.3]);
        // The oldest entry (0.01) must have been dropped: 9.0 would spike
        // against a 0.01 baseline but is healthy against min(0.2, 0.3).
        assert_eq!(w.check(9.0, 1.0, None), None);
        // `check` keeps the window bounded at `policy.window` entries too.
        assert_eq!(w.export_window(), vec![0.3, 9.0]);
    }

    #[test]
    fn codes_and_display_are_informative() {
        let d = Divergence::LossSpike { loss: 100.0, baseline: 0.5, factor: 50.0 };
        assert_eq!(d.code(), "watchdog/loss_spike");
        let msg = d.to_string();
        assert!(msg.contains("100") && msg.contains("0.5"), "{msg}");
        assert_eq!(
            Divergence::NonFiniteLoss { loss: f64::NAN }.code(),
            "watchdog/non_finite_loss"
        );
        assert_eq!(
            Divergence::GradientExplosion { grad_norm: 1e9, limit: 1e6 }.code(),
            "watchdog/gradient_explosion"
        );
        assert_eq!(
            Divergence::LambdaOutOfRange { detail: String::new() }.code(),
            "watchdog/lambda_out_of_range"
        );
    }
}
