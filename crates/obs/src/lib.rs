//! **fairwos-obs** — zero-dependency observability for the Fairwos training
//! pipeline: hierarchical span timers, kernel counters, peak-scale gauges,
//! and a stable `RunMetrics` JSON schema.
//!
//! # Why a bespoke layer
//!
//! The paper's Fig. 8 reports per-method training time, and every perf PR in
//! this workspace needs to prove its win against per-stage numbers — but the
//! kernels live in `fairwos-tensor`, the innermost crate, where a `tracing`
//! dependency is unacceptable. This crate is pure `std`, so it can sit below
//! everything, and the whole API compiles to **no-ops** unless the `enabled`
//! cargo feature is on (each consumer crate forwards it as its own `obs`
//! feature).
//!
//! # The three instruments
//!
//! * **Spans** — `let _s = span("train/stage2/epoch");` measures wall time
//!   from construction to drop. The global registry aggregates
//!   count/total/min/max per label. Hierarchy is by naming convention:
//!   `/`-separated segments from coarse to fine (see
//!   `docs/OBSERVABILITY.md`).
//! * **Counters** — `counter_add("tensor/matmul/flops", 2 * m * k * n)`
//!   accumulates a total and a call count per label. Used by the matmul /
//!   SPMM kernels and the matrix allocator.
//! * **Scales** — `scale_max("train/nodes", n)` keeps the per-run maximum,
//!   recording the peak problem size a run touched. Its sibling
//!   `gauge_set("serve/latency/p50_ns", v)` keeps the **last** value
//!   instead — the right kind for quantities a live scraper watches, which
//!   must be able to go back down.
//!
//! # Live export
//!
//! [`MetricsSnapshot::capture`] copies the whole registry (plus the event
//! journal's occupancy and drop counter) at any moment, and
//! [`prometheus_text`] renders it in Prometheus text exposition — the
//! payload behind `fairwos-serve`'s admin `GET /metrics` endpoint
//! (`docs/OBSERVABILITY.md`).
//!
//! # Run lifecycle
//!
//! The registry is process-global (the kernels have no handle to thread
//! state through which a context could flow). A harness brackets each run
//! with [`reset`] … [`RunMetrics::capture`], then serializes the batch with
//! [`write_pipeline_json`] — the `results/bench_pipeline.json` schema that
//! seeds the benchmark trajectory.
//!
//! ```
//! use fairwos_obs as obs;
//!
//! obs::reset();
//! {
//!     let _s = obs::span("demo/work");
//!     obs::counter_add("demo/ops", 42);
//!     obs::scale_max("demo/size", 7);
//! }
//! let metrics = obs::RunMetrics::capture("Fairwos", "nba", "GCN", 0, 1.25);
//! // With the `enabled` feature the snapshot now holds the span, counter,
//! // and scale; without it, the vectors are empty and the whole block above
//! // compiled to (almost) nothing.
//! assert_eq!(metrics.spans.is_empty(), !obs::is_enabled());
//! ```

mod event;
mod json;
mod prometheus;
mod report;
mod snapshot;
mod telemetry;
mod trace;
pub mod watchdog;

pub use event::{Event, EventRing, TimedEvent, DEFAULT_JOURNAL_CAPACITY};
pub use prometheus::{prometheus_text, validate_prometheus_text, PROMETHEUS_CONTENT_TYPE};
pub use report::{
    pipeline_json, write_pipeline_json, CounterMetric, RunMetrics, ScaleMetric, SpanMetric,
};
pub use snapshot::{GaugeMetric, JournalStats, MetricsSnapshot};
pub use telemetry::{EpochRecord, EvalMetrics, TelemetrySink, TELEMETRY_SCHEMA_VERSION};
pub use trace::{trace_json, write_trace_json, TRACE_SCHEMA_VERSION};
pub use watchdog::{lambda_in_simplex, Divergence, Watchdog, WatchdogPolicy};

/// Whether the `enabled` feature compiled the instrumentation in.
///
/// Harness code uses this to skip metric collection (and the files it would
/// write) in uninstrumented builds.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Starts a span: wall time is measured until the guard drops.
///
/// Equivalent to [`span`]; exists so call sites read as instrumentation
/// (`span!("stage2/epoch/forward")`) rather than as a function call whose
/// return value must not be discarded.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span($label)
    };
}

#[cfg(feature = "enabled")]
mod registry;

#[cfg(feature = "enabled")]
pub use registry::{
    counter_add, counter_totals, gauge_set, gauge_values, journal_alert, journal_checkpoint,
    journal_counter_snapshot, journal_epoch, journal_events, journal_record, journal_rollback,
    journal_stats, monotonic_ns, reset, scale_max, set_journal_capacity, span, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
mod noop {
    //! No-op stand-ins compiled without the `enabled` feature: every body is
    //! empty and `#[inline(always)]`, so instrumented call sites — including
    //! the argument arithmetic feeding them — disappear from release builds.

    /// Dropping the guard ends the span. In this build: a zero-sized token.
    #[must_use = "a span measures until the guard drops; bind it with `let _s = ...`"]
    pub struct SpanGuard<'a>(core::marker::PhantomData<&'a ()>);

    /// Starts a span (no-op in this build).
    #[inline(always)]
    pub fn span(_label: &str) -> SpanGuard<'_> {
        SpanGuard(core::marker::PhantomData)
    }

    /// Adds `_amount` to a counter (no-op in this build).
    #[inline(always)]
    pub fn counter_add(_label: &str, _amount: u64) {}

    /// Records a peak value (no-op in this build).
    #[inline(always)]
    pub fn scale_max(_label: &str, _value: u64) {}

    /// Sets a last-value gauge (no-op in this build).
    #[inline(always)]
    pub fn gauge_set(_label: &str, _value: u64) {}

    /// Last-value gauge snapshot (always empty in this build).
    #[inline(always)]
    pub fn gauge_values() -> Vec<crate::GaugeMetric> {
        Vec::new()
    }

    /// Journal occupancy (always zero in this build).
    #[inline(always)]
    pub fn journal_stats() -> crate::JournalStats {
        crate::JournalStats::default()
    }

    /// Clears the registry (no-op in this build).
    #[inline(always)]
    pub fn reset() {}

    /// Counter totals snapshot (always empty in this build).
    #[inline(always)]
    pub fn counter_totals() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Appends an event to the journal (no-op in this build).
    #[inline(always)]
    pub fn journal_record(_event: crate::Event) {}

    /// Records an epoch-boundary event (no-op in this build).
    #[inline(always)]
    pub fn journal_epoch(_stage: u8, _epoch: u64) {}

    /// Records an alert event (no-op in this build).
    #[inline(always)]
    pub fn journal_alert(_code: &str, _message: &str) {}

    /// Records a counter-snapshot event (no-op in this build).
    #[inline(always)]
    pub fn journal_counter_snapshot(_label: &str, _value: u64) {}

    /// Records a checkpoint event (no-op in this build).
    #[inline(always)]
    pub fn journal_checkpoint(_generation: u64, _stage: u8, _epoch: u64) {}

    /// Records a rollback event (no-op in this build).
    #[inline(always)]
    pub fn journal_rollback(_generation: u64, _stage: u8, _epoch: u64) {}

    /// Journal snapshot (always empty in this build).
    #[inline(always)]
    pub fn journal_events() -> Vec<crate::TimedEvent> {
        Vec::new()
    }

    /// Resizes the journal ring (no-op in this build).
    #[inline(always)]
    pub fn set_journal_capacity(_capacity: usize) {}

    /// Monotonic timestamp (always `0` in this build, so latency deltas
    /// computed from it are `0` and downstream histograms stay empty).
    #[inline(always)]
    pub fn monotonic_ns() -> u64 {
        0
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter_add, counter_totals, gauge_set, gauge_values, journal_alert, journal_checkpoint,
    journal_counter_snapshot, journal_epoch, journal_events, journal_record, journal_rollback,
    journal_stats, monotonic_ns, reset, scale_max, set_journal_capacity, span, SpanGuard,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_is_inert_and_enabled_mode_records() {
        reset();
        {
            let _s = span("lib_test/outer");
            let _inner = span!("lib_test/inner");
            counter_add("lib_test/counter", 5);
            counter_add("lib_test/counter", 7);
            scale_max("lib_test/scale", 3);
            scale_max("lib_test/scale", 11);
            scale_max("lib_test/scale", 4);
        }
        let rm = RunMetrics::capture("m", "d", "b", 1, 0.5);
        if is_enabled() {
            let outer = rm
                .spans
                .iter()
                .find(|s| s.label == "lib_test/outer")
                .unwrap_or_else(|| panic!("outer span missing: {:?}", rm.spans));
            assert_eq!(outer.count, 1);
            assert!(outer.total_secs >= 0.0);
            assert!(outer.min_secs <= outer.max_secs);
            let c = rm
                .counters
                .iter()
                .find(|c| c.label == "lib_test/counter")
                .unwrap_or_else(|| panic!("counter missing: {:?}", rm.counters));
            assert_eq!(c.calls, 2);
            assert_eq!(c.total, 12);
            let s = rm
                .scales
                .iter()
                .find(|s| s.label == "lib_test/scale")
                .unwrap_or_else(|| panic!("scale missing: {:?}", rm.scales));
            assert_eq!(s.max, 11);
        } else {
            assert!(rm.spans.is_empty());
            assert!(rm.counters.is_empty());
            assert!(rm.scales.is_empty());
        }
        assert_eq!(rm.method, "m");
        assert_eq!(rm.seed, 1);
        assert_eq!(rm.wall_secs, 0.5);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn span_aggregates_min_and_max_across_repeats() {
        for _ in 0..3 {
            let _s = span("lib_test/repeat");
            std::hint::black_box(0u64);
        }
        let rm = RunMetrics::capture("m", "d", "b", 0, 0.0);
        let agg = rm
            .spans
            .iter()
            .find(|s| s.label == "lib_test/repeat")
            .unwrap_or_else(|| panic!("repeat span missing"));
        assert!(agg.count >= 3, "count {} < 3", agg.count);
        assert!(agg.min_secs <= agg.max_secs);
        assert!(agg.total_secs >= agg.max_secs);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn reset_clears_only_state_recorded_before_it() {
        counter_add("lib_test/reset_probe_unique", 1);
        reset();
        counter_add("lib_test/after_reset_unique", 2);
        let rm = RunMetrics::capture("m", "d", "b", 0, 0.0);
        // Another test thread may have re-populated unrelated labels after
        // the reset; only our own probes are asserted on.
        assert!(rm.counters.iter().all(|c| c.label != "lib_test/reset_probe_unique"));
        assert!(rm.counters.iter().any(|c| c.label == "lib_test/after_reset_unique"));
    }
}
