//! Golden-snapshot test for the `bench_pipeline.json` schema.
//!
//! A hand-built [`RunMetrics`] batch is serialized and compared
//! byte-for-byte against the checked-in fixture, so any change to the
//! schema — field order, indentation, number formatting, the wrapper
//! document — shows up as an explicit diff in review instead of silently
//! breaking downstream readers of `results/bench_pipeline.json`.
//!
//! To regenerate after an *intentional* schema change (bump
//! `SCHEMA_VERSION` first):
//!
//! ```sh
//! cargo test -p fairwos-obs --test golden_run_metrics -- --ignored regenerate
//! ```

use fairwos_obs::{pipeline_json, CounterMetric, RunMetrics, ScaleMetric, SpanMetric};

const FIXTURE: &str = include_str!("fixtures/run_metrics_golden.json");

/// Two runs exercising every schema corner: populated and empty metric
/// arrays, a zero seed, a label needing string escaping, and floats with
/// short and long shortest-representations.
fn golden_runs() -> Vec<RunMetrics> {
    vec![
        RunMetrics {
            method: "Fairwos".to_owned(),
            dataset: "nba".to_owned(),
            backbone: "GCN".to_owned(),
            seed: 2025,
            wall_secs: 1.25,
            spans: vec![
                SpanMetric {
                    label: "train/stage1_encoder".to_owned(),
                    count: 1,
                    total_secs: 0.75,
                    min_secs: 0.75,
                    max_secs: 0.75,
                },
                SpanMetric {
                    label: "train/stage2/epoch".to_owned(),
                    count: 500,
                    total_secs: 0.4,
                    min_secs: 0.0005,
                    max_secs: 0.003,
                },
            ],
            counters: vec![
                CounterMetric {
                    label: "graph/spmm/fma".to_owned(),
                    calls: 1500,
                    total: 123456789,
                },
                CounterMetric {
                    label: "tensor/matmul/flops".to_owned(),
                    calls: 3000,
                    total: 9876543210,
                },
            ],
            scales: vec![
                ScaleMetric { label: "train/edges".to_owned(), max: 16570 },
                ScaleMetric { label: "train/nodes".to_owned(), max: 403 },
            ],
        },
        RunMetrics {
            method: "Vanilla \"baseline\"".to_owned(),
            dataset: "synthetic".to_owned(),
            backbone: "SAGE".to_owned(),
            seed: 0,
            wall_secs: 0.0078125,
            spans: Vec::new(),
            counters: Vec::new(),
            scales: Vec::new(),
        },
    ]
}

#[test]
fn pipeline_json_matches_the_checked_in_fixture() {
    let actual = pipeline_json(&golden_runs());
    assert_eq!(
        actual, FIXTURE,
        "bench_pipeline.json schema drifted from the golden fixture; if the \
         change is intentional, bump SCHEMA_VERSION and regenerate with \
         `cargo test -p fairwos-obs --test golden_run_metrics -- --ignored regenerate`"
    );
}

#[test]
fn fixture_is_valid_for_naive_line_readers() {
    // The trajectory tooling greps the file line-by-line; pin the coarse
    // landmarks it keys on so the full-byte assertion above isn't the only
    // documentation of them.
    assert!(FIXTURE.starts_with("{\n  \"schema_version\": 1,\n"));
    assert!(FIXTURE.contains("\"tool\": \"fairwos-obs\""));
    assert!(FIXTURE.contains("\"runs\": ["));
    assert!(FIXTURE.ends_with("}\n"));
}

#[test]
#[ignore = "writes the fixture; run explicitly after an intentional schema change"]
fn regenerate() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/run_metrics_golden.json");
    std::fs::write(&path, pipeline_json(&golden_runs())).unwrap();
}
