//! Byte-level golden test for the telemetry JSONL schema
//! (`schema_version: 1`). If this fails you changed the line layout:
//! bump [`fairwos_obs::TELEMETRY_SCHEMA_VERSION`], regenerate the fixture
//! (`cargo test -p fairwos-obs --test golden_telemetry -- --ignored`), and
//! update `docs/OBSERVABILITY.md`.

use fairwos_obs::{EpochRecord, EvalMetrics, TelemetrySink};

const FIXTURE: &str = include_str!("fixtures/telemetry_golden.jsonl");

/// One stage-2 record (empty λ/counters, no eval) and one stage-3 record
/// (full shape) — together they exercise every branch of the serializer.
fn golden_sink() -> TelemetrySink {
    let mut sink = TelemetrySink::new();
    sink.push(EpochRecord {
        stage: 2,
        epoch: 0,
        loss_cls: 0.6931471805599453,
        loss_inv: 0.0,
        loss_suf: 0.0,
        lambda: Vec::new(),
        grad_norm: 1.25,
        counters: Vec::new(),
        eval: None,
    });
    sink.push(EpochRecord {
        stage: 3,
        epoch: 4,
        loss_cls: 0.5,
        loss_inv: 0.25,
        loss_suf: 1.5,
        lambda: vec![0.75, 0.25],
        grad_norm: 2.5,
        counters: vec![("tensor/matmul/flops".to_owned(), 1200)],
        eval: Some(EvalMetrics {
            accuracy: 0.7,
            f1: 0.6,
            delta_sp: 0.05,
            delta_eo: 0.04,
        }),
    });
    sink
}

#[test]
fn telemetry_jsonl_matches_fixture_byte_for_byte() {
    assert_eq!(golden_sink().to_jsonl(), FIXTURE);
}

#[test]
#[ignore = "writes the fixture; run explicitly after an intentional schema change"]
fn regenerate() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/telemetry_golden.jsonl");
    std::fs::write(&path, golden_sink().to_jsonl()).unwrap();
}
