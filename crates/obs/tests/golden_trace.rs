//! Byte-level golden test for the Chrome `trace_event` export
//! (`schema_version: 1`). If this fails you changed the document layout:
//! bump [`fairwos_obs::TRACE_SCHEMA_VERSION`], regenerate the fixture
//! (`cargo test -p fairwos-obs --test golden_trace -- --ignored`), and
//! re-check the output still loads in Perfetto.

use fairwos_obs::{trace_json, Event, TimedEvent};

const FIXTURE: &str = include_str!("fixtures/trace_golden.json");

/// A two-event document: one matched `"B"`/`"E"` span pair on thread 0,
/// pinning the envelope fields and the ns→µs timestamp formatting.
fn golden_events() -> Vec<TimedEvent> {
    vec![
        TimedEvent {
            ts_ns: 1_500,
            tid: 0,
            event: Event::SpanBegin { label: "train/stage2/epoch".to_owned() },
        },
        TimedEvent {
            ts_ns: 2_501_250,
            tid: 0,
            event: Event::SpanEnd { label: "train/stage2/epoch".to_owned() },
        },
    ]
}

#[test]
fn trace_document_matches_fixture_byte_for_byte() {
    assert_eq!(trace_json(&golden_events()), FIXTURE);
}

#[test]
#[ignore = "writes the fixture; run explicitly after an intentional schema change"]
fn regenerate() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/trace_golden.json");
    std::fs::write(&path, trace_json(&golden_events())).unwrap();
}
