//! Byte-pins the Prometheus text exposition for a deterministic
//! [`MetricsSnapshot`] — the admin endpoint's `GET /metrics` payload is a
//! stable contract exactly like the `RunMetrics` JSON and the Chrome trace.
//!
//! The snapshot is hand-constructed (not captured from the global
//! registry), so the expected bytes are exact in both build modes.

use fairwos_obs::{
    prometheus_text, validate_prometheus_text, CounterMetric, GaugeMetric, JournalStats,
    MetricsSnapshot, ScaleMetric, SpanMetric,
};

fn fixture_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        spans: vec![
            SpanMetric {
                label: "serve/precompute".to_owned(),
                count: 2,
                total_secs: 0.5,
                min_secs: 0.125,
                max_secs: 0.375,
            },
            SpanMetric {
                label: "train/stage1_encoder".to_owned(),
                count: 1,
                total_secs: 1.25,
                min_secs: 1.25,
                max_secs: 1.25,
            },
        ],
        counters: vec![
            CounterMetric { label: "serve/queries".to_owned(), calls: 7, total: 420 },
            CounterMetric { label: "tensor/matmul/flops".to_owned(), calls: 3, total: 600 },
        ],
        scales: vec![ScaleMetric { label: "serve/batch/max".to_owned(), max: 64 }],
        gauges: vec![
            GaugeMetric { label: "serve/fairness/delta_sp_ppm".to_owned(), value: 81250 },
            GaugeMetric { label: "serve/latency/p50_ns".to_owned(), value: 2047 },
        ],
        journal: JournalStats { len: 9, dropped: 3, capacity: 65536 },
    }
}

const EXPECTED: &str = "\
# TYPE fairwos_serve_queries_total counter
fairwos_serve_queries_total 420
# TYPE fairwos_serve_queries_calls_total counter
fairwos_serve_queries_calls_total 7
# TYPE fairwos_tensor_matmul_flops_total counter
fairwos_tensor_matmul_flops_total 600
# TYPE fairwos_tensor_matmul_flops_calls_total counter
fairwos_tensor_matmul_flops_calls_total 3
# TYPE fairwos_span_serve_precompute_count counter
fairwos_span_serve_precompute_count 2
# TYPE fairwos_span_serve_precompute_seconds_total counter
fairwos_span_serve_precompute_seconds_total 0.5
# TYPE fairwos_span_serve_precompute_seconds_min gauge
fairwos_span_serve_precompute_seconds_min 0.125
# TYPE fairwos_span_serve_precompute_seconds_max gauge
fairwos_span_serve_precompute_seconds_max 0.375
# TYPE fairwos_span_train_stage1_encoder_count counter
fairwos_span_train_stage1_encoder_count 1
# TYPE fairwos_span_train_stage1_encoder_seconds_total counter
fairwos_span_train_stage1_encoder_seconds_total 1.25
# TYPE fairwos_span_train_stage1_encoder_seconds_min gauge
fairwos_span_train_stage1_encoder_seconds_min 1.25
# TYPE fairwos_span_train_stage1_encoder_seconds_max gauge
fairwos_span_train_stage1_encoder_seconds_max 1.25
# TYPE fairwos_scale_serve_batch_max_max gauge
fairwos_scale_serve_batch_max_max 64
# TYPE fairwos_gauge_serve_fairness_delta_sp_ppm gauge
fairwos_gauge_serve_fairness_delta_sp_ppm 81250
# TYPE fairwos_gauge_serve_latency_p50_ns gauge
fairwos_gauge_serve_latency_p50_ns 2047
# TYPE fairwos_journal_events gauge
fairwos_journal_events 9
# TYPE fairwos_journal_dropped_total counter
fairwos_journal_dropped_total 3
# TYPE fairwos_journal_capacity gauge
fairwos_journal_capacity 65536
";

#[test]
fn exposition_bytes_are_pinned() {
    assert_eq!(prometheus_text(&fixture_snapshot()), EXPECTED);
}

#[test]
fn pinned_fixture_passes_the_validator() {
    let samples = validate_prometheus_text(EXPECTED).expect("golden payload must validate");
    assert_eq!(samples, 18);
}

#[test]
fn empty_snapshot_still_exposes_journal_health() {
    let text = prometheus_text(&MetricsSnapshot::default());
    assert_eq!(
        text,
        "# TYPE fairwos_journal_events gauge\n\
         fairwos_journal_events 0\n\
         # TYPE fairwos_journal_dropped_total counter\n\
         fairwos_journal_dropped_total 0\n\
         # TYPE fairwos_journal_capacity gauge\n\
         fairwos_journal_capacity 0\n"
    );
    assert_eq!(validate_prometheus_text(&text), Ok(3));
}
