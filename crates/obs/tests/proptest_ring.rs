//! Property tests for the event journal's bounded ring: length never
//! exceeds capacity, eviction is strictly oldest-first, and the dropped
//! count accounts for every evicted event.

use fairwos_obs::{Event, EventRing, TimedEvent};
use proptest::prelude::*;

fn epoch_at(i: usize) -> TimedEvent {
    TimedEvent {
        ts_ns: i as u64,
        tid: 0,
        event: Event::Epoch { stage: 2, epoch: i as u64 },
    }
}

proptest! {
    #[test]
    fn ring_is_bounded_and_evicts_oldest_first(
        capacity in 1usize..48,
        n in 0usize..256,
    ) {
        let mut ring = EventRing::new(capacity);
        for i in 0..n {
            ring.push(epoch_at(i));
            prop_assert!(ring.len() <= capacity, "len {} > capacity {}", ring.len(), capacity);
        }
        let retained = n.min(capacity);
        let snap = ring.snapshot();
        prop_assert_eq!(snap.len(), retained);
        prop_assert_eq!(ring.dropped(), (n - retained) as u64);
        // The survivors are exactly the most recent `retained` pushes, in
        // push order — i.e. eviction removed a prefix, never a middle or
        // recent element.
        for (j, ev) in snap.iter().enumerate() {
            prop_assert_eq!(ev.ts_ns, (n - retained + j) as u64);
        }
    }

    #[test]
    fn shrinking_capacity_drops_only_the_oldest(
        initial in 1usize..48,
        fill in 0usize..64,
        shrunk in 0usize..48,
    ) {
        let mut ring = EventRing::new(initial);
        for i in 0..fill {
            ring.push(epoch_at(i));
        }
        let before = ring.snapshot();
        ring.set_capacity(shrunk);
        let effective = shrunk.max(1); // zero clamps to 1
        prop_assert_eq!(ring.capacity(), effective);
        let snap = ring.snapshot();
        prop_assert!(snap.len() <= effective);
        // What survives a shrink is exactly the tail of what was there.
        prop_assert_eq!(&snap[..], &before[before.len() - snap.len()..]);
        // And pushes after the shrink still respect the new bound.
        ring.push(epoch_at(fill));
        prop_assert!(ring.len() <= effective);
        let last = ring.snapshot();
        prop_assert_eq!(last.last().map(|e| e.ts_ns), Some(fill as u64));
    }
}
