//! Direct regression tests of the armed registry's aggregation semantics:
//! `SpanAgg` min/max/count/total across interleaved spans from multiple
//! threads, and `reset()` isolation between captures.
//!
//! These run in their own process (integration test binary), so the only
//! state they share is with each other — a file-local mutex serializes them
//! against the process-global registry.

#![cfg(feature = "enabled")]

use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::Duration;

use fairwos_obs as obs;

/// Serializes the tests in this binary against the global registry.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn interleaved_multi_thread_spans_pin_min_max_count_total() {
    let _g = lock();
    obs::reset();

    const LABEL: &str = "sem/interleaved";
    const SHORT_MS: u64 = 2;
    const LONG_MS: u64 = 8;
    // Two threads, each recording one short and one long span under the
    // same label, interleaved with the other thread.
    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                {
                    let _s = obs::span(LABEL);
                    thread::sleep(Duration::from_millis(SHORT_MS));
                }
                {
                    let _s = obs::span(LABEL);
                    thread::sleep(Duration::from_millis(LONG_MS));
                }
            });
        }
    });

    let rm = obs::RunMetrics::capture("m", "d", "b", 0, 0.0);
    let agg = rm
        .spans
        .iter()
        .find(|s| s.label == LABEL)
        .unwrap_or_else(|| panic!("span {LABEL} missing from {:?}", rm.spans));

    assert_eq!(agg.count, 4, "2 threads × 2 spans");
    // sleep(d) guarantees at least d elapses, so these bounds are exact
    // even on a loaded machine (only the upper bounds would be flaky, and
    // none are asserted).
    let short = SHORT_MS as f64 / 1e3;
    let long = LONG_MS as f64 / 1e3;
    assert!(
        agg.min_secs >= short,
        "min {} must be ≥ the shortest sleep {short}",
        agg.min_secs
    );
    // The regression this test pins: min must track the *shortest* span,
    // not stay at the default 0 and not follow the most recent recording.
    assert!(
        agg.min_secs <= agg.max_secs,
        "min {} > max {}",
        agg.min_secs,
        agg.max_secs
    );
    assert!(
        agg.max_secs >= long,
        "max {} must be ≥ the longest sleep {long}",
        agg.max_secs
    );
    assert!(
        agg.total_secs >= 2.0 * (short + long),
        "total {} must be ≥ the sum of all sleeps {}",
        agg.total_secs,
        2.0 * (short + long)
    );
    assert!(
        agg.total_secs >= agg.max_secs + 3.0 * agg.min_secs - 1e-9,
        "total must dominate any single recording"
    );
}

#[test]
fn min_tracks_a_later_shorter_span() {
    let _g = lock();
    obs::reset();
    const LABEL: &str = "sem/min_order";
    {
        let _s = obs::span(LABEL);
        thread::sleep(Duration::from_millis(8));
    }
    {
        let _s = obs::span(LABEL);
        thread::sleep(Duration::from_millis(1));
    }
    let rm = obs::RunMetrics::capture("m", "d", "b", 0, 0.0);
    let agg = rm
        .spans
        .iter()
        .find(|s| s.label == LABEL)
        .unwrap_or_else(|| panic!("span missing"));
    assert_eq!(agg.count, 2);
    assert!(
        agg.min_secs < 0.008,
        "min {} still holds the first (long) recording",
        agg.min_secs
    );
    assert!(agg.max_secs >= 0.008);
}

#[test]
fn reset_between_captures_yields_empty_run_metrics() {
    let _g = lock();
    obs::reset();
    {
        let _s = obs::span("sem/reset_probe");
        obs::counter_add("sem/reset_counter", 3);
        obs::scale_max("sem/reset_scale", 9);
    }
    let before = obs::RunMetrics::capture("m", "d", "b", 0, 0.0);
    assert!(!before.spans.is_empty());
    assert!(!before.counters.is_empty());
    assert!(!before.scales.is_empty());

    obs::reset();
    let after = obs::RunMetrics::capture("m", "d", "b", 0, 0.0);
    assert!(after.spans.is_empty(), "spans survived reset: {:?}", after.spans);
    assert!(after.counters.is_empty(), "counters survived reset");
    assert!(after.scales.is_empty(), "scales survived reset");
}

#[test]
fn spans_feed_the_journal_and_reset_clears_it() {
    let _g = lock();
    obs::reset();
    assert!(obs::journal_events().is_empty(), "journal must start empty");
    {
        let _s = obs::span("sem/journal_span");
        obs::journal_epoch(2, 5);
    }
    obs::journal_alert("sem/alert", "test alert");
    let events = obs::journal_events();
    let begins = events
        .iter()
        .filter(|e| {
            matches!(&e.event, obs::Event::SpanBegin { label } if label == "sem/journal_span")
        })
        .count();
    let ends = events
        .iter()
        .filter(|e| {
            matches!(&e.event, obs::Event::SpanEnd { label } if label == "sem/journal_span")
        })
        .count();
    assert_eq!(begins, 1);
    assert_eq!(ends, 1);
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, obs::Event::Epoch { stage: 2, epoch: 5 })));
    assert!(events
        .iter()
        .any(|e| matches!(&e.event, obs::Event::Alert { code, .. } if code == "sem/alert")));
    // Timestamps are non-decreasing per thread (single-threaded here).
    for pair in events.windows(2) {
        assert!(pair[0].ts_ns <= pair[1].ts_ns, "timestamps went backwards");
    }

    obs::reset();
    assert!(obs::journal_events().is_empty(), "reset must clear the journal");
}

#[test]
fn gauge_keeps_last_value_while_scale_ratchets() {
    let _g = lock();
    obs::reset();
    // Identical write sequence to both kinds; only the fold differs.
    for v in [3u64, 11, 4] {
        obs::gauge_set("sem/kind_probe", v);
        obs::scale_max("sem/kind_probe", v);
    }
    let snap = obs::MetricsSnapshot::capture();
    let gauge = snap
        .gauges
        .iter()
        .find(|g| g.label == "sem/kind_probe")
        .unwrap_or_else(|| panic!("gauge missing from {:?}", snap.gauges));
    assert_eq!(gauge.value, 4, "a gauge must follow the value back down");
    let scale = snap
        .scales
        .iter()
        .find(|s| s.label == "sem/kind_probe")
        .unwrap_or_else(|| panic!("scale missing"));
    assert_eq!(scale.max, 11, "a scale must ratchet at the peak");

    obs::reset();
    assert!(
        obs::MetricsSnapshot::capture().gauges.is_empty(),
        "reset must clear gauges"
    );
}

#[test]
fn snapshot_surfaces_journal_drops_and_gauges_without_touching_run_metrics() {
    let _g = lock();
    obs::reset();
    obs::set_journal_capacity(2);
    // 5 events into a 2-slot ring: 3 oldest-first evictions.
    for epoch in 0..5 {
        obs::journal_epoch(1, epoch);
    }
    obs::gauge_set("sem/drop_probe", 7);

    let snap = obs::MetricsSnapshot::capture();
    assert_eq!(snap.journal.capacity, 2);
    assert_eq!(snap.journal.len, 2);
    assert_eq!(
        snap.journal.dropped, 3,
        "oldest-first eviction must be a scrapeable number"
    );

    // The exposition carries the drop counter end to end.
    let text = obs::prometheus_text(&snap);
    assert!(text.contains("fairwos_journal_dropped_total 3\n"), "{text}");
    assert!(text.contains("fairwos_gauge_sem_drop_probe 7\n"), "{text}");
    obs::validate_prometheus_text(&text).expect("live capture must validate");

    // Gauges are a live-export concern only: the byte-pinned RunMetrics
    // schema must not grow a gauges section.
    let json = obs::pipeline_json(&[obs::RunMetrics::capture("m", "d", "b", 0, 0.0)]);
    assert!(!json.contains("\"gauges\""), "RunMetrics JSON must stay gauge-free");

    obs::set_journal_capacity(obs::DEFAULT_JOURNAL_CAPACITY);
    obs::reset();
    let after = obs::MetricsSnapshot::capture();
    assert_eq!(after.journal.dropped, 0, "reset must clear the drop counter");
    assert_eq!(after.journal.capacity, obs::DEFAULT_JOURNAL_CAPACITY as u64);
}

#[test]
fn counter_totals_snapshot_diffs() {
    let _g = lock();
    obs::reset();
    obs::counter_add("sem/totals", 5);
    let first: u64 = obs::counter_totals()
        .iter()
        .find(|(l, _)| l == "sem/totals")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert_eq!(first, 5);
    obs::counter_add("sem/totals", 7);
    let second: u64 = obs::counter_totals()
        .iter()
        .find(|(l, _)| l == "sem/totals")
        .map(|&(_, v)| v)
        .unwrap_or(0);
    assert_eq!(second - first, 7, "totals must accumulate, not reset");
}
