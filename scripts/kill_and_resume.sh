#!/usr/bin/env bash
# Crash-recovery smoke test: train with on-disk checkpointing, SIGKILL the
# process mid-run, resume from the surviving checkpoints, and require the
# resumed model file to be byte-identical to the model of a seed-twin run
# that was never interrupted (the bit-identical-resume contract of
# docs/ROBUSTNESS.md). Run by scripts/ci.sh and .github/workflows/ci.yml;
# on failure CI uploads results/kill_and_resume (checkpoints included) as
# an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=target/release/fairwos-cli
WORK=results/kill_and_resume
rm -rf "$WORK"
mkdir -p "$WORK"

cargo build --release --bin fairwos-cli

"$BIN" generate --dataset nba --scale 0.5 --seed 42 --out "$WORK/data.json"

# The uninterrupted twin: identical data, seed, and config (the
# checkpoint interval is part of the config embedded in the model file,
# so both runs must set it; only the victim gets a checkpoint dir).
"$BIN" train --data "$WORK/data.json" --seed 7 --checkpoint-interval 5 \
    --out "$WORK/model_uninterrupted.json"

# Poll until $1 checkpoint files exist (or the victim exits on its own);
# fail loudly on timeout instead of killing a checkpoint-less process and
# reporting a confusing resume failure later.
wait_for_checkpoints() {
    local want=$1 deadline=$((SECONDS + 60))
    while [ "$(compgen -G "$WORK/ckpts/ckpt-*.fwck" | wc -l)" -lt "$want" ]; do
        # The victim finished (its model file is the last thing it writes) or
        # died; either way stop polling — resume is still exercised below.
        # (`kill -0` alone is not enough: an exited-but-unreaped child is a
        # zombie and still answers signal 0.)
        if [ -f "$WORK/model_resumed.json" ] || ! kill -0 "$PID" 2>/dev/null; then
            return 0
        fi
        if [ "$SECONDS" -ge "$deadline" ]; then
            echo "error: victim produced < $want checkpoints within 60s" >&2
            kill -9 "$PID" 2>/dev/null || true
            wait "$PID" 2>/dev/null || true
            exit 1
        fi
        sleep 0.1
    done
}

# The victim: checkpoints to disk, killed hard once checkpoints exist.
"$BIN" train --data "$WORK/data.json" --seed 7 --checkpoint-interval 5 \
    --checkpoint-dir "$WORK/ckpts" --out "$WORK/model_resumed.json" &
PID=$!
# Wait for a *second* generation (bounded poll, not a fixed sleep) so the
# kill lands mid-stage-2 with at least one intact checkpoint behind it.
wait_for_checkpoints 1
wait_for_checkpoints 2
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true
if [ -f "$WORK/model_resumed.json" ]; then
    echo "note: victim finished before the kill landed; resume still exercised below" >&2
fi

# Resume: the same command picks up from the newest intact generation.
"$BIN" train --data "$WORK/data.json" --seed 7 --checkpoint-interval 5 \
    --checkpoint-dir "$WORK/ckpts" --out "$WORK/model_resumed.json"

cmp "$WORK/model_uninterrupted.json" "$WORK/model_resumed.json"
echo "kill-and-resume: resumed model is byte-identical to the uninterrupted run."
