#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, release build, tests
# (default features AND the checked+obs instrumented build), the FW static
# lints, the finite-difference gradient sweep, and an instrumented bench
# smoke run that must produce results/bench_pipeline.json.
# Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (checked + obs instrumentation armed)"
cargo test --workspace --features fairwos/checked,fairwos/obs,fairwos-bench/obs -q

echo "==> determinism test under RAYON_NUM_THREADS=1"
RAYON_NUM_THREADS=1 cargo test -p fairwos --test determinism -q

echo "==> instrumented bench smoke run (results/bench_pipeline.json)"
cargo run --release -p fairwos-bench --features obs --bin exp_table2 -- --scale 0.02 --runs 1
test -s results/bench_pipeline.json

echo "==> bench wall-clock regression gate (results/bench_baseline.json)"
cargo run --release -p fairwos-bench --bin bench_check

echo "==> fairwos-audit lint"
cargo run --release -p fairwos-audit -- lint

echo "==> fairwos-audit gradients"
cargo run --release -p fairwos-audit -- gradients

echo "CI gate passed."
