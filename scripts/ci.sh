#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, release build, tests,
# the FW static lints, and the finite-difference gradient sweep.
# Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test -p fairwos-tensor --features checked"
cargo test -p fairwos-tensor --features checked -q

echo "==> fairwos-audit lint"
cargo run --release -p fairwos-audit -- lint

echo "==> fairwos-audit gradients"
cargo run --release -p fairwos-audit -- gradients

echo "CI gate passed."
