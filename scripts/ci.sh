#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, release build, tests
# (default features AND the checked+obs instrumented build), an obs-off
# build proving the pipeline crates compile without the instrumentation
# feature, the kill-and-resume crash-recovery smoke test, the chaos-armed
# build plus the exp_chaos fault-injection soak smoke, the FW static
# lints, the finite-difference gradient sweep, and instrumented bench
# smoke runs that must produce results/bench_pipeline.json plus the
# trace/telemetry artifacts.
# Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings; exceptions pinned in [workspace.lints])"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test --workspace -q

echo "==> cargo test (checked + obs instrumentation armed)"
cargo test --workspace --features fairwos/checked,fairwos/obs,fairwos-bench/obs -q

echo "==> determinism test under RAYON_NUM_THREADS=1"
RAYON_NUM_THREADS=1 cargo test -p fairwos --test determinism -q

echo "==> obs-off builds (pipeline crates must compile without the feature)"
cargo build -p fairwos-tensor -p fairwos-nn -p fairwos-core --no-default-features

echo "==> chaos-armed build + fairwos-chaos armed tests"
cargo build --workspace --features fairwos/chaos,fairwos-bench/chaos
cargo test -p fairwos-chaos --features enabled -q

echo "==> kill-and-resume crash recovery smoke test"
bash scripts/kill_and_resume.sh

echo "==> chaos soak smoke (results/chaos.json; 3 pinned seeds, replay identity)"
cargo run --release -p fairwos-bench --features chaos --bin exp_chaos -- --scale 0.3 --out results/chaos.json
test -s results/chaos.json

echo "==> instrumented bench smoke run (results/bench_pipeline.json)"
cargo run --release -p fairwos-bench --features obs --bin exp_table2 -- --scale 0.02 --runs 1
test -s results/bench_pipeline.json

echo "==> instrumented convergence trace (results/trace.json + telemetry.jsonl)"
cargo run --release -p fairwos-bench --features obs --bin exp_fig5_convergence -- --scale 0.3
test -s results/trace.json
test -s results/telemetry.jsonl

echo "==> trace/telemetry artifact validation"
cargo run --release -p fairwos-bench --bin trace_check

echo "==> mini-batch comparison artifact (results/minibatch.json)"
cargo run --release -p fairwos-bench --bin exp_minibatch -- --scale 0.3 --runs 1 --out results/minibatch.json
test -s results/minibatch.json

echo "==> serving throughput gate (results/serving.json, >=100k qps, 10 Hz admin scraper attached)"
cargo run --release -p fairwos-bench --features obs --bin exp_serving -- --scale 0.5 --out results/serving.json
test -s results/serving.json

echo "==> admin scrape smoke test (/metrics + /readyz over real TCP, exposition validated)"
cargo test -p fairwos --features obs --test admin_http -q

echo "==> bench wall-clock regression gate"
# Wall-clock numbers are machine-specific, so the committed
# results/bench_baseline.json ships uncalibrated and the gate arms itself
# per machine: the first run calibrates a local baseline (gitignored; the
# GitHub workflow persists it with actions/cache), every later run gates
# against it. See docs/PERFORMANCE.md.
BENCH_BASELINE_PATH="${BENCH_BASELINE_PATH:-results/bench_baseline.local.json}"
export BENCH_BASELINE_PATH
if [ ! -s "$BENCH_BASELINE_PATH" ]; then
  echo "no calibrated baseline at $BENCH_BASELINE_PATH; calibrating this machine"
  BENCH_BASELINE_WRITE=1 cargo run --release -p fairwos-bench --bin bench_check
fi
cargo run --release -p fairwos-bench --bin bench_check

echo "==> fairwos-audit lint (full report; findings land in results/audit_lint.json)"
# Plain mode exits 1 whenever any finding exists, including those pinned in
# the baseline; here it is the report generator, so tolerate exactly that
# exit code (I/O errors exit 2 and still fail the gate).
cargo run --release -p fairwos-audit -- lint || [ $? -eq 1 ]

echo "==> fairwos-audit lint (ratchet gate against results/lint_baseline.json)"
cargo run --release -p fairwos-audit -- lint --baseline results/lint_baseline.json

echo "==> fairwos-audit gradients"
cargo run --release -p fairwos-audit -- gradients

echo "CI gate passed."
