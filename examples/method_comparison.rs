//! Run every method of the paper's Table II on one dataset and print a
//! mini comparison table — the programmatic version of the benchmark
//! harness, showing how to drive arbitrary `FairMethod`s from user code.
//!
//! ```sh
//! cargo run --release --example method_comparison [-- <dataset> [scale]]
//! # e.g. cargo run --release --example method_comparison -- bail 0.03
//! ```

use fairwos::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "bail".to_string());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.03);

    let spec = DatasetSpec::by_name(&name)
        .unwrap_or_else(|| panic!("unknown dataset {name}; try bail/credit/pokec-z/pokec-n/nba/occupation"));
    let spec = if name == "nba" { spec } else { spec.scaled(scale) };
    let ds = FairGraphDataset::generate(&spec, 2025);
    println!("{name}: {} nodes, {} edges", ds.num_nodes(), ds.graph.num_edges());

    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };

    // The related/candidate features RemoveR and FairRF assume as domain
    // knowledge: the dataset's documented proxy columns.
    let proxies: Vec<usize> = (0..ds.spec.corr_features).collect();
    let methods: Vec<Box<dyn FairMethod>> = vec![
        Box::new(Vanilla::new(Backbone::Gcn)),
        Box::new(RemoveR::new(Backbone::Gcn, proxies.clone())),
        Box::new(KSmote::new(Backbone::Gcn)),
        Box::new(FairRF::new(Backbone::Gcn, proxies)),
        Box::new(FairGkd::new(Backbone::Gcn)),
        Box::new(FairwosTrainer::new(FairwosConfig {
            alpha: 2.0,
            finetune_epochs: 40,
            ..FairwosConfig::fast(Backbone::Gcn)
        })),
    ];

    println!("{:<12} | {:>7} | {:>7} | {:>7} | {:>8}", "Method", "ACC%", "ΔSP%", "ΔEO%", "seconds");
    for method in &methods {
        let start = std::time::Instant::now();
        let probs = method.fit_predict(&input, 2025);
        let secs = start.elapsed().as_secs_f64();
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let report = EvalReport::compute(
            &tp,
            &ds.labels_of(&ds.split.test),
            &ds.sensitive_of(&ds.split.test),
        );
        println!(
            "{:<12} | {:>7.2} | {:>7.2} | {:>7.2} | {:>8.2}",
            method.name(),
            report.accuracy * 100.0,
            report.delta_sp * 100.0,
            report.delta_eo * 100.0,
            secs
        );
    }
}
