//! The paper's running example (Fig. 1): loan approval where race is
//! legally unavailable at training time but leaks through correlated
//! attributes (postal code) and through who-knows-whom edges.
//!
//! Builds the scenario from scratch with the library's primitives — no
//! dataset presets — to show the full manual workflow: graph construction,
//! feature assembly, training, and counterfactual inspection.
//!
//! ```sh
//! cargo run --release --example loan_approval
//! ```

use fairwos::prelude::*;
use fairwos_tensor::seeded_rng;
use rand::Rng;

fn main() {
    let mut rng = seeded_rng(7);
    let n = 400;

    // --- The hidden protected attribute: race group A or B.
    let race: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();

    // --- Features (race itself is NOT included):
    //   col 0: income          (legitimate signal for repayment)
    //   col 1: credit history  (legitimate signal)
    //   col 2: zip code index  (strongly race-correlated — the proxy)
    let mut features = Matrix::zeros(n, 3);
    let mut repaid = vec![0.0f32; n];
    for v in 0..n {
        let income: f32 = rng.gen_range(-1.0..1.0);
        let history: f32 = rng.gen_range(-1.0..1.0);
        // Residential segregation: zip correlates with race.
        let zip = if race[v] { 1.0 } else { -1.0 } + rng.gen_range(-0.6..0.6f32);
        features.set(v, 0, income);
        features.set(v, 1, history);
        features.set(v, 2, zip);
        // Ground truth repayment depends on income+history, plus a small
        // historical-disadvantage effect tied to race (the root bias).
        let logit = 1.4 * income + 1.0 * history + if race[v] { 0.5 } else { -0.5 };
        repaid[v] = (rng.gen_bool(1.0 / (1.0 + (-logit as f64).exp()))) as u8 as f32;
    }
    features.standardize_cols_assign();

    // --- Social edges: people know people in their own neighbourhood
    //     (race-homophilous), plus some ties among co-repayers.
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let base = 0.012;
            let f = if race[u] == race[v] { 4.0 } else { 1.0 }
                * if repaid[u] == repaid[v] { 1.5 } else { 1.0 };
            if rng.gen_bool((base * f as f64).min(1.0)) {
                builder.add_edge(u, v);
            }
        }
    }
    let graph = builder.build();
    println!(
        "loan graph: {n} applicants, {} edges, race homophily {:.2}",
        graph.num_edges(),
        fairwos::graph::generate::sensitive_homophily(&graph, &race)
    );

    // --- Split and train.
    let split = Split::paper_default(n, &mut seeded_rng(1));
    let input = TrainInput {
        graph: &graph,
        features: &features,
        labels: &repaid,
        train: &split.train,
        val: &split.val,
    };
    let eval = |name: &str, probs: &[f32]| {
        let tp: Vec<f32> = split.test.iter().map(|&v| probs[v]).collect();
        let tl: Vec<f32> = split.test.iter().map(|&v| repaid[v]).collect();
        let ts: Vec<bool> = split.test.iter().map(|&v| race[v]).collect();
        let r = EvalReport::compute(&tp, &tl, &ts);
        println!(
            "{name:<10} approval-ACC {:.1}%  ΔSP {:.1}%  ΔEO {:.1}%",
            r.accuracy * 100.0,
            r.delta_sp * 100.0,
            r.delta_eo * 100.0
        );
    };

    let vanilla = Vanilla::new(Backbone::Gcn).fit_predict(&input, 3);
    eval("Vanilla", &vanilla);

    let config = FairwosConfig {
        alpha: 2.0,
        encoder_dim: 8,
        finetune_epochs: 40,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let trained = FairwosTrainer::new(config).fit(&input, 3).expect("training diverged");
    eval("Fairwos", &trained.predict_probs());

    // --- How much does each pseudo-sensitive attribute proxy race?
    //     (Correlation of each encoder dimension with the hidden attribute.)
    let x0 = trained.pseudo_sensitive_attributes();
    let race_f: Vec<f32> = race.iter().map(|&r| r as u8 as f32).collect();
    println!("\n|corr(pseudo-sensitive dim, race)| and learned λ per dimension:");
    for i in 0..x0.cols() {
        let col = x0.col(i);
        let corr = fairwos::analysis::pearson(&col, &race_f).abs();
        println!("  dim {i}: corr {:.2}, λ {:.3}", corr, trained.lambda()[i]);
    }
}
