//! Quickstart: train Fairwos on the NBA benchmark and compare its utility
//! and fairness against the vanilla GCN backbone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fairwos::prelude::*;

fn main() {
    // 1. Data: the NBA benchmark at its true size (403 players). The
    //    sensitive attribute (nationality) is NOT in the feature matrix —
    //    it is only revealed at evaluation time.
    let ds = FairGraphDataset::generate(&DatasetSpec::nba(), 42);
    let (p0, p1) = ds.base_rates();
    println!("NBA: {} nodes, {} edges, base rates P(y=1|s)=({p0:.2}, {p1:.2})",
        ds.num_nodes(), ds.graph.num_edges());

    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let evaluate = |name: &str, probs: &[f32]| {
        let test_probs: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let report = EvalReport::compute(
            &test_probs,
            &ds.labels_of(&ds.split.test),
            &ds.sensitive_of(&ds.split.test),
        );
        println!(
            "{name:<10} ACC {:.1}%  ΔSP {:.1}%  ΔEO {:.1}%  AUC {:.3}",
            report.accuracy * 100.0,
            report.delta_sp * 100.0,
            report.delta_eo * 100.0,
            report.auc
        );
        report
    };

    // 2. The vanilla backbone: learns the task but inherits the bias.
    let vanilla = Vanilla::new(Backbone::Gcn).fit_predict(&input, 42);
    let v = evaluate("Vanilla", &vanilla);

    // 3. Fairwos: encoder → pseudo-sensitive attributes → counterfactual
    //    search → fair representation learning with KKT weight updates.
    let config = FairwosConfig {
        alpha: 2.0,
        finetune_epochs: 40,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let trained = FairwosTrainer::new(config).fit(&input, 42).expect("training diverged");
    let f = evaluate("Fairwos", &trained.predict_probs());

    // 4. Inspect the learned artifacts.
    println!("\nλ over the {} pseudo-sensitive attributes:", trained.lambda().len());
    println!("  {:?}", trained.lambda().iter().map(|l| (l * 100.0).round() / 100.0).collect::<Vec<_>>());
    println!("Theorem-2 weight bound Π‖W_a‖_F = {:.3}", trained.weight_product_norm());
    println!(
        "\nFairness gain: ΔSP {:.1}% → {:.1}%, ΔEO {:.1}% → {:.1}%",
        v.delta_sp * 100.0,
        f.delta_sp * 100.0,
        v.delta_eo * 100.0,
        f.delta_eo * 100.0
    );
}
