//! Bring your own benchmark: define a custom `DatasetSpec`, generate a
//! realization, persist it to JSON, reload it, and train on it.
//!
//! Use this as the template for studying how each bias knob (proxy
//! strength, homophily, base-rate gap) affects what Fairwos can repair.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use fairwos::prelude::*;

fn main() {
    // A hypothetical hiring network: 1,200 applicants, 24 attributes,
    // gender hidden. Strong proxy features, moderate homophily, and a
    // substantial historical base-rate gap.
    let spec = DatasetSpec {
        name: "hiring".into(),
        nodes: 1200,
        features: 24,
        target_avg_degree: 18.0,
        sens_rate: 0.4,
        corr_features: 6,
        corr_strength: 1.0,
        label_features: 8,
        label_strength: 0.5,
        label_sens_bias: 0.4,
        homophily_ratio: 5.0,
        label_homophily_ratio: 2.0,
        sensitive_name: "Gender".into(),
        label_name: "Hired".into(),
        description: "Custom".into(),
    };

    let ds = FairGraphDataset::generate(&spec, 123);
    println!("{}", DatasetStats::table_header());
    println!("{}", DatasetStats::of(&ds).table_row());

    // Persist and reload — the JSON interchange format round-trips the
    // whole realization (graph, features, labels, sensitive, split).
    let path = std::env::temp_dir().join("hiring_dataset.json");
    std::fs::write(&path, ds.to_json()).expect("write dataset");
    let reloaded = FairGraphDataset::from_json(&std::fs::read_to_string(&path).expect("read"))
        .expect("valid dataset file");
    assert_eq!(reloaded.labels, ds.labels);
    println!("round-tripped through {}", path.display());

    // Train on the reloaded copy.
    let input = TrainInput {
        graph: &reloaded.graph,
        features: &reloaded.features,
        labels: &reloaded.labels,
        train: &reloaded.split.train,
        val: &reloaded.split.val,
    };
    for (name, probs) in [
        ("Vanilla", Vanilla::new(Backbone::Gcn).fit_predict(&input, 9)),
        (
            "Fairwos",
            FairwosTrainer::new(FairwosConfig {
                alpha: 2.0,
                finetune_epochs: 40,
                ..FairwosConfig::fast(Backbone::Gcn)
            })
            .fit_predict(&input, 9),
        ),
    ] {
        let tp: Vec<f32> = reloaded.split.test.iter().map(|&v| probs[v]).collect();
        let report = EvalReport::compute(
            &tp,
            &reloaded.labels_of(&reloaded.split.test),
            &reloaded.sensitive_of(&reloaded.split.test),
        );
        println!(
            "{name:<8} ACC {:.1}%  ΔSP {:.1}%  ΔEO {:.1}%",
            report.accuracy * 100.0,
            report.delta_sp * 100.0,
            report.delta_eo * 100.0
        );
    }
}
