//! Backbone tour: run the same Fairwos pipeline over all four message-
//! passing backbones (GCN, GIN, GraphSAGE, GAT) and compare.
//!
//! The paper evaluates GCN and GIN and notes the framework "is flexible for
//! various backbones" — this example demonstrates that flexibility.
//!
//! ```sh
//! cargo run --release --example backbone_tour
//! ```

use fairwos::prelude::*;

fn main() {
    let ds = FairGraphDataset::generate(&DatasetSpec::bail().scaled(0.02), 11);
    println!("bail @ {} nodes, {} edges\n", ds.num_nodes(), ds.graph.num_edges());
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    println!(
        "{:<6} | {:>7} | {:>7} | {:>7} | {:>9} | {:>8}",
        "Back.", "ACC%", "ΔSP%", "ΔEO%", "Π‖W_a‖", "seconds"
    );
    for backbone in [Backbone::Gcn, Backbone::Gin, Backbone::Sage, Backbone::Gat] {
        let config = FairwosConfig {
            alpha: 2.0,
            finetune_epochs: 40,
            ..FairwosConfig::fast(backbone)
        };
        let start = std::time::Instant::now();
        let trained = FairwosTrainer::new(config).fit(&input, 11).expect("training diverged");
        let secs = start.elapsed().as_secs_f64();
        let probs = trained.predict_probs();
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let report = EvalReport::compute(
            &tp,
            &ds.labels_of(&ds.split.test),
            &ds.sensitive_of(&ds.split.test),
        );
        println!(
            "{:<6} | {:>7.2} | {:>7.2} | {:>7.2} | {:>9.3} | {:>8.2}",
            backbone.to_string(),
            report.accuracy * 100.0,
            report.delta_sp * 100.0,
            report.delta_eo * 100.0,
            trained.weight_product_norm(),
            secs
        );
    }
}
