//! Steady-state allocation budget for the *mini-batch* training hot path.
//!
//! Same differential methodology as `tests/alloc_budget.rs` (two fits that
//! differ only in `finetune_epochs`, the byte delta is the cost of the
//! extra steady-state epochs), but on the neighbor-sampled path, which is
//! the harder case for the workspace pool: subgraph buffer shapes vary
//! from epoch to epoch (each epoch resamples neighborhoods under a fresh
//! salt), so exact-size recycling would miss on every marginally larger
//! request. The pool's power-of-two capacity classes are what make the
//! buffer set converge; this test is the regression guard for that.
//!
//! This binary holds only this test: the obs registry is process-global,
//! and any other obs-reset test in the same binary would race the counters.

use fairwos::obs;
use fairwos::prelude::*;

fn config(finetune_epochs: usize) -> FairwosConfig {
    FairwosConfig {
        encoder_epochs: 30,
        classifier_epochs: 40,
        finetune_epochs,
        learning_rate: 0.01,
        patience: 20,
        encoder_dim: 8,
        alpha: 0.5,
        // Four-ish blocks of ≤ 48 seeds with two sampled neighbors per
        // node: genuinely variable per-epoch subgraph shapes.
        minibatch: Some(MinibatchConfig::new(48, vec![2])),
        ..FairwosConfig::paper_default(Backbone::Gcn)
    }
}

/// Runs a full mini-batch fit and returns its `tensor/alloc/bytes` total.
fn alloc_bytes_of_fit(ds: &FairGraphDataset, finetune_epochs: usize, seed: u64) -> u64 {
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    obs::reset();
    let _ = FairwosTrainer::new(config(finetune_epochs))
        .fit(&input, seed)
        .expect("training converges");
    let metrics = obs::RunMetrics::capture("Fairwos", "alloc-budget-minibatch", "GCN", seed, 0.0);
    metrics
        .counters
        .iter()
        .find(|c| c.label == "tensor/alloc/bytes")
        .map_or(0, |c| c.total)
}

#[test]
fn minibatch_steady_state_epochs_stay_within_alloc_budget() {
    if !obs::is_enabled() {
        eprintln!("alloc_budget_minibatch: skipped (build without the `obs` feature)");
        return;
    }
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.4), 5);
    let short = alloc_bytes_of_fit(&ds, 3, 7);
    let long = alloc_bytes_of_fit(&ds, 8, 7);
    assert!(
        long >= short,
        "longer run allocated less ({long} < {short}); the runs are not comparable"
    );
    // 5 extra steady-state fine-tuning epochs, each preparing ~4 sampled
    // subgraph batches. The full-batch budget is kept as-is: once the pow2
    // capacity classes are warm, resampled shapes must recycle, not
    // allocate.
    let steady = long - short;
    const BUDGET: u64 = 64 * 1024;
    assert!(
        steady <= BUDGET,
        "5 steady-state mini-batch fine-tuning epochs allocated {steady} \
         bytes (budget {BUDGET}); variable-shaped batch buffers are no \
         longer absorbed by the workspace pool's pow2 classes"
    );

    assert!(short > 0, "tensor/alloc/bytes counter recorded nothing");
}
