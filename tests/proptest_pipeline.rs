//! Cross-crate property tests: whatever the dataset realization, the full
//! pipeline must uphold its contracts.

use fairwos::prelude::*;
use proptest::prelude::*;

fn short_config(backbone: Backbone) -> FairwosConfig {
    FairwosConfig {
        encoder_dim: 4,
        encoder_epochs: 20,
        classifier_epochs: 30,
        finetune_epochs: 3,
        learning_rate: 0.02,
        patience: 30,
        ..FairwosConfig::paper_default(backbone)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pipeline_contracts_hold_for_any_realization(seed in 0u64..10_000) {
        let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.2), seed);
        let input = TrainInput {
            graph: &ds.graph,
            features: &ds.features,
            labels: &ds.labels,
            train: &ds.split.train,
            val: &ds.split.val,
        };
        let trained = FairwosTrainer::new(short_config(Backbone::Gcn)).fit(&input, seed).expect("training converges");

        // Predictions are probabilities for every node.
        let probs = trained.predict_probs();
        prop_assert_eq!(probs.len(), ds.num_nodes());
        prop_assert!(probs.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)));

        // λ stays on the simplex whatever happened during training.
        let lsum: f32 = trained.lambda().iter().sum();
        prop_assert!((lsum - 1.0).abs() < 1e-3, "λ sum {}", lsum);
        prop_assert!(trained.lambda().iter().all(|&l| l >= 0.0));

        // Artifacts are finite.
        prop_assert!(!trained.embeddings().has_non_finite());
        prop_assert!(!trained.pseudo_sensitive_attributes().has_non_finite());
        prop_assert!(trained.weight_product_norm().is_finite());
    }

    #[test]
    fn metrics_of_any_model_are_bounded(seed in 0u64..10_000) {
        let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.15), seed);
        let input = TrainInput {
            graph: &ds.graph,
            features: &ds.features,
            labels: &ds.labels,
            train: &ds.split.train,
            val: &ds.split.val,
        };
        let probs = Vanilla::new(Backbone::Gcn).fit_predict(&input, seed);
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let r = EvalReport::compute(&tp, &ds.labels_of(&ds.split.test), &ds.sensitive_of(&ds.split.test));
        for v in [r.accuracy, r.delta_sp, r.delta_eo, r.auc, r.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn training_is_reproducible(seed in 0u64..1_000) {
        let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.15), seed);
        let input = TrainInput {
            graph: &ds.graph,
            features: &ds.features,
            labels: &ds.labels,
            train: &ds.split.train,
            val: &ds.split.val,
        };
        let a = FairwosTrainer::new(short_config(Backbone::Gcn)).fit(&input, seed).expect("training converges");
        let b = FairwosTrainer::new(short_config(Backbone::Gcn)).fit(&input, seed).expect("training converges");
        prop_assert_eq!(a.predict_probs(), b.predict_probs());
        prop_assert_eq!(a.lambda(), b.lambda());
    }
}
