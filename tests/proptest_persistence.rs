//! Persistence fuzzing: any truncation, byte flip, or outright garbage in
//! a sealed artifact — model file or training checkpoint — must surface as
//! a typed `PersistError`. Never a panic, and never a silently wrong load:
//! the integrity footer (length + FNV-1a checksum) catches every
//! single-byte difference, and truncation always breaks either the footer
//! or the JSON payload.

use fairwos::core::checkpoint::{
    decode_checkpoint, encode_checkpoint, AdamSnapshot, CHECKPOINT_VERSION,
};
use fairwos::core::persist::MODEL_FILE_VERSION;
use fairwos::core::FairwosModelFile;
use fairwos::prelude::*;
use fairwos::tensor::{export_rng_state, seeded_rng};
use proptest::prelude::*;

fn tiny_checkpoint() -> TrainingCheckpoint {
    TrainingCheckpoint {
        version: CHECKPOINT_VERSION,
        seed: 7,
        config: FairwosConfig::fast(Backbone::Gcn),
        stage: 2,
        epoch: 3,
        lr_scale: 1.0,
        rng: export_rng_state(&seeded_rng(7)),
        encoder_weights: None,
        encoder_losses: vec![0.9, 0.7],
        gnn_weights: vec![Matrix::zeros(3, 2), Matrix::zeros(2, 1)],
        opt: AdamSnapshot::default(),
        lambda: vec![0.5, 0.5],
        classifier_losses: vec![0.8, 0.6, 0.55],
        best_val: None,
        best_params: Vec::new(),
        since_best: 1,
        pseudo_labels: vec![true, false, true],
        finetune: Vec::new(),
        cf: None,
        watchdog_window: vec![0.8, 0.6],
    }
}

fn tiny_model_file() -> FairwosModelFile {
    FairwosModelFile {
        version: MODEL_FILE_VERSION,
        config: FairwosConfig::fast(Backbone::Gcn),
        in_dim: 4,
        encoder_weights: None,
        gnn_weights: vec![Matrix::zeros(4, 2), Matrix::zeros(2, 1)],
        lambda: vec![0.25, 0.75],
    }
}

/// Saves the tiny model once and returns its sealed on-disk bytes. `tag`
/// keeps concurrently running tests on distinct files.
fn sealed_model_bytes(tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir()
        .join(format!("fairwos-proptest-model-{tag}-{}.fwm", std::process::id()));
    tiny_model_file().save(&path).expect("save succeeds");
    let bytes = std::fs::read(&path).expect("saved model readable");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn sealed_checkpoint_round_trips() {
    let blob = encode_checkpoint(&tiny_checkpoint()).expect("encode succeeds");
    let back = decode_checkpoint(&blob).expect("decode succeeds");
    assert_eq!(back.seed, 7);
    assert_eq!(back.stage, 2);
    assert_eq!(back.epoch, 3);
    assert_eq!(back.rng, tiny_checkpoint().rng);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncated_checkpoint_blob_is_a_typed_error(idx in any::<prop::sample::Index>()) {
        let blob = encode_checkpoint(&tiny_checkpoint()).expect("encode succeeds");
        let cut = idx.index(blob.len());
        prop_assert!(decode_checkpoint(&blob[..cut]).is_err(), "truncation to {cut} bytes loaded");
    }

    #[test]
    fn flipped_checkpoint_byte_is_a_typed_error(idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut blob = encode_checkpoint(&tiny_checkpoint()).expect("encode succeeds");
        let i = idx.index(blob.len());
        blob[i] ^= 1 << bit;
        prop_assert!(decode_checkpoint(&blob).is_err(), "flip at byte {i} bit {bit} went undetected");
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_checkpoint_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assert!(decode_checkpoint(&bytes).is_err());
    }

    #[test]
    fn truncated_model_file_is_a_typed_error(idx in any::<prop::sample::Index>()) {
        let sealed = sealed_model_bytes("trunc-seed");
        let cut = idx.index(sealed.len());
        let path = std::env::temp_dir()
            .join(format!("fairwos-proptest-model-trunc-{}.fwm", std::process::id()));
        std::fs::write(&path, &sealed[..cut]).expect("write truncated file");
        let loaded = FairwosModelFile::load(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(loaded.is_err(), "truncation to {cut} bytes loaded");
    }

    #[test]
    fn flipped_model_file_byte_is_a_typed_error(
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut sealed = sealed_model_bytes("flip-seed");
        let i = idx.index(sealed.len());
        sealed[i] ^= 1 << bit;
        let path = std::env::temp_dir()
            .join(format!("fairwos-proptest-model-flip-{}.fwm", std::process::id()));
        std::fs::write(&path, &sealed).expect("write corrupted file");
        let loaded = FairwosModelFile::load(&path);
        let _ = std::fs::remove_file(&path);
        prop_assert!(loaded.is_err(), "flip at byte {i} bit {bit} went undetected");
    }
}
