//! Property test pinning the bounded-heap counterfactual top-K selection to
//! the full-argsort reference it replaced.
//!
//! `search_topk` used to argsort every query's distance row; it now keeps a
//! per-attribute max-heap bounded at K (`O(C·I·log K)` instead of
//! `O(C log C)`) and computes distances lazily. The contract is exact: for
//! any embeddings, pseudo-labels, sensitive bits and candidate pool, the
//! heap must return the *same node lists in the same order* as a stable
//! argsort by `f32::total_cmp` followed by the per-attribute bit filter —
//! including the tie case, where the stable sort keeps candidates in pool
//! order. Embedding coordinates are drawn from a small quantized set so
//! exact distance ties occur constantly rather than almost never.

use fairwos::core::counterfactual::{search_topk, SearchSpace};
use fairwos::tensor::{sq_dist, Matrix};
use proptest::prelude::*;

/// The old implementation, kept verbatim as the executable specification.
fn argsort_reference(
    emb: &Matrix,
    labels: &[bool],
    bits: &[Vec<bool>],
    candidates: &[usize],
    q: usize,
    k: usize,
) -> Vec<Vec<usize>> {
    let num_attrs = bits.first().map_or(0, Vec::len);
    let order: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&u| u != q && labels[u] == labels[q])
        .collect();
    let dists: Vec<f32> = order
        .iter()
        .map(|&u| sq_dist(emb.row(q), emb.row(u)))
        .collect();
    let mut idx: Vec<usize> = (0..order.len()).collect();
    idx.sort_by(|&a, &b| dists[a].total_cmp(&dists[b]));
    let sorted: Vec<usize> = idx.into_iter().map(|i| order[i]).collect();
    (0..num_attrs)
        .map(|attr| {
            sorted
                .iter()
                .copied()
                .filter(|&u| bits[u][attr] != bits[q][attr])
                .take(k)
                .collect()
        })
        .collect()
}

/// One random search instance: quantized embeddings (for ties), labels,
/// bits, and a candidate subset.
#[derive(Debug)]
struct Instance {
    emb: Vec<Vec<f32>>,
    labels: Vec<bool>,
    bits: Vec<Vec<bool>>,
    candidates: Vec<usize>,
    k: usize,
}

fn instance() -> impl Strategy<Value = Instance> {
    (2usize..24, 1usize..4, 1usize..4).prop_flat_map(|(n, h, attrs)| {
        let coord = prop::sample::select(vec![0.0f32, 0.5, 1.0, 2.0]);
        (
            prop::collection::vec(prop::collection::vec(coord, h), n),
            prop::collection::vec(any::<bool>(), n),
            prop::collection::vec(prop::collection::vec(any::<bool>(), attrs), n),
            prop::collection::vec(any::<bool>(), n),
            1usize..5,
        )
            .prop_map(|(emb, labels, bits, in_pool, k)| Instance {
                emb,
                labels,
                bits,
                candidates: in_pool
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &keep)| keep.then_some(i))
                    .collect(),
                k,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn heap_selection_matches_argsort_reference(inst in instance()) {
        let rows: Vec<&[f32]> = inst.emb.iter().map(Vec::as_slice).collect();
        let emb = Matrix::from_rows(&rows);
        let queries: Vec<usize> = (0..inst.emb.len()).collect();
        let space = SearchSpace {
            embeddings: &emb,
            pseudo_labels: &inst.labels,
            pseudo_sensitive: &inst.bits,
            candidates: &inst.candidates,
        };
        let sets = search_topk(&space, &queries, inst.k);
        for (q_idx, &q) in queries.iter().enumerate() {
            let expect =
                argsort_reference(&emb, &inst.labels, &inst.bits, &inst.candidates, q, inst.k);
            for (attr, expect_attr) in expect.iter().enumerate() {
                prop_assert_eq!(
                    &sets.for_attr(attr)[q_idx],
                    expect_attr,
                    "query {} attribute {} k {}",
                    q,
                    attr,
                    inst.k
                );
            }
        }
    }
}
