//! Divergence-watchdog contract tests at the facade level: every trigger
//! surfaces as a value (`Option<Divergence>` from the policy checker, or a
//! typed `Err(TrainError)` from training) — no `should_panic` anywhere,
//! because divergence is a reportable outcome, not a crash.

use fairwos::obs::{lambda_in_simplex, Divergence, Watchdog, WatchdogPolicy};
use fairwos::prelude::*;

#[test]
fn non_finite_loss_is_a_typed_verdict() {
    let mut w = Watchdog::new(WatchdogPolicy::default());
    match w.check(f64::NAN, 1.0, None) {
        Some(Divergence::NonFiniteLoss { loss }) => assert!(loss.is_nan()),
        other => panic!("expected NonFiniteLoss, got {other:?}"),
    }
    assert!(matches!(
        w.check(f64::NEG_INFINITY, 1.0, None),
        Some(Divergence::NonFiniteLoss { .. })
    ));
}

#[test]
fn loss_spike_compares_against_the_trailing_window_minimum() {
    let mut w = Watchdog::new(WatchdogPolicy::default());
    assert_eq!(w.check(0.7, 1.0, None), None, "first epoch can never spike");
    assert_eq!(w.check(0.5, 1.0, None), None);
    match w.check(1e4, 1.0, None) {
        Some(Divergence::LossSpike { loss, baseline, factor }) => {
            assert_eq!(loss, 1e4);
            assert_eq!(baseline, 0.5);
            assert_eq!(factor, WatchdogPolicy::default().spike_factor);
        }
        other => panic!("expected LossSpike, got {other:?}"),
    }
}

#[test]
fn gradient_explosion_reports_norm_and_limit() {
    let policy = WatchdogPolicy { grad_limit: 100.0, ..WatchdogPolicy::default() };
    let mut w = Watchdog::new(policy);
    assert_eq!(w.check(0.5, 99.0, None), None);
    match w.check(0.5, 101.0, None) {
        Some(Divergence::GradientExplosion { grad_norm, limit }) => {
            assert_eq!(grad_norm, 101.0);
            assert_eq!(limit, 100.0);
        }
        other => panic!("expected GradientExplosion, got {other:?}"),
    }
}

#[test]
fn infeasible_lambda_is_rejected_with_a_detail() {
    let mut w = Watchdog::new(WatchdogPolicy::default());
    assert_eq!(w.check(0.5, 1.0, Some(&[0.25, 0.75])), None);
    match w.check(0.5, 1.0, Some(&[0.6, 0.6])) {
        Some(Divergence::LambdaOutOfRange { detail }) => {
            assert!(detail.contains("Σλ"), "detail should name the sum: {detail}");
        }
        other => panic!("expected LambdaOutOfRange, got {other:?}"),
    }
    // The predicate the trainer re-exports as `lambda_feasible` agrees.
    assert!(lambda_in_simplex(&[0.25, 0.75], 1e-3));
    assert!(!lambda_in_simplex(&[0.6, 0.6], 1e-3));
    assert!(!lambda_in_simplex(&[], 1e-3));
}

#[test]
fn every_divergence_code_is_namespaced_under_watchdog() {
    for d in [
        Divergence::NonFiniteLoss { loss: f64::NAN },
        Divergence::LossSpike { loss: 1.0, baseline: 0.1, factor: 5.0 },
        Divergence::GradientExplosion { grad_norm: 1e9, limit: 1e6 },
        Divergence::LambdaOutOfRange { detail: "Σλ = 2".to_owned() },
    ] {
        assert!(d.code().starts_with("watchdog/"), "{}", d.code());
        assert!(!d.to_string().is_empty());
    }
}

#[test]
fn explosive_learning_rate_surfaces_as_err_not_panic() {
    // Adam moves each parameter roughly lr per step, so lr = 1e4 drives the
    // logits (and BCE loss) into watchdog territory within a few epochs.
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 5);
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let cfg = FairwosConfig {
        use_encoder: false,
        learning_rate: 1e4,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let err: TrainError = FairwosTrainer::new(cfg)
        .fit(&input, 7)
        .expect_err("explosive learning rate must trip the watchdog");
    let d: &TrainingDiverged = err.divergence().expect("a watchdog trip, not another error");
    assert_eq!(d.stage, 2);
    assert!(
        d.epoch < 1 + WatchdogConfig::default().window,
        "watchdog took {} epochs to notice",
        d.epoch
    );
    // The reason is one of the typed triggers and the error is a real
    // std::error::Error with full context in its message.
    assert!(d.reason.code().starts_with("watchdog/"));
    let msg = (&err as &dyn std::error::Error).to_string();
    assert!(msg.contains("stage 2"), "{msg}");
}

#[test]
fn watchdog_config_round_trips_and_matches_obs_defaults() {
    // The serde-facing config mirrors the obs-side policy so thresholds
    // configured in JSON land unchanged in the watchdog.
    let cfg = WatchdogConfig::default();
    let policy = cfg.policy();
    assert_eq!(policy, WatchdogPolicy::default());
    // Older serialized configs (no watchdog block) still deserialize.
    let legacy: FairwosConfig =
        serde_json::from_str(&serde_json::to_string(&FairwosConfig::fast(Backbone::Gcn)).expect("serialize")).expect("deserialize");
    assert_eq!(legacy.watchdog, WatchdogConfig::default());
}
