//! Property tests for the mini-batch sampling layer (`fairwos_graph::sampling`).
//!
//! These pin the three invariants the mini-batch trainer builds on:
//!
//! 1. **Structural validity** — [`partition`] is a disjoint sorted cover of
//!    the node set within the batch budget, and every [`SubgraphSample`]
//!    round-trips its global↔local remapping, carries only real edges of
//!    the parent graph, and respects the per-layer fanout bound.
//! 2. **Purity** — a neighbor sample is a function of
//!    `(seed, salt, layer, node)` alone: repeating a draw, interleaving
//!    draws of other nodes, or reversing the call order never changes it.
//! 3. **Schedule independence** — sampling a whole epoch's blocks through
//!    rayon (any thread count, any work-stealing order) produces exactly
//!    the per-block subgraphs of the serial loop, which is what lets
//!    `BatchPlan::prepare_epoch` parallelize without a determinism caveat.

use fairwos::graph::generate::{erdos_renyi, sensitive_sbm};
use fairwos::graph::{partition, Graph, NeighborSampler};
use fairwos::tensor::seeded_rng;
use proptest::prelude::*;
use rayon::prelude::*;

/// One random sampling instance: a generated graph plus sampler knobs.
#[derive(Debug)]
struct Instance {
    graph: Graph,
    sampler_seed: u64,
    salt: u64,
    fanout: Vec<usize>,
    batch_nodes: usize,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        4usize..40,
        0u64..1000,
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(0usize..5, 1..4),
        1usize..20,
        any::<bool>(),
    )
        .prop_map(
            |(n, graph_seed, sampler_seed, salt, fanout, batch_nodes, use_sbm)| {
                let mut rng = seeded_rng(graph_seed);
                let graph = if use_sbm {
                    let sens: Vec<bool> = (0..n).map(|v| v % 3 == 0).collect();
                    sensitive_sbm(&sens, 0.3, 0.08, &mut rng)
                } else {
                    erdos_renyi(n, 0.15, &mut rng)
                };
                Instance {
                    graph,
                    sampler_seed,
                    salt,
                    fanout,
                    batch_nodes,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Partition blocks are sorted, disjoint, within budget, and cover
    /// every node exactly once.
    #[test]
    fn partition_is_a_sorted_disjoint_cover(inst in instance()) {
        let g = &inst.graph;
        let blocks = partition(g, inst.batch_nodes);
        let mut owner = vec![usize::MAX; g.num_nodes()];
        for (bi, block) in blocks.iter().enumerate() {
            prop_assert!(!block.is_empty(), "empty block");
            prop_assert!(block.len() <= inst.batch_nodes, "block over budget");
            prop_assert!(block.windows(2).all(|w| w[0] < w[1]), "block not sorted");
            for &v in block {
                prop_assert_eq!(owner[v], usize::MAX, "node {} in two blocks", v);
                owner[v] = bi;
            }
        }
        prop_assert!(owner.iter().all(|&o| o != usize::MAX), "a node was dropped");
    }

    /// Every sampled subgraph is structurally valid: no dangling local ids,
    /// the global↔local remap round-trips, targets mirror the block, every
    /// sampled edge exists in the parent graph, and each expanded node's
    /// *outgoing* sample respects the layer fanout (the symmetrized
    /// neighbor lists may be larger — they also carry reverse edges).
    #[test]
    fn sampled_subgraphs_are_valid(inst in instance()) {
        let g = &inst.graph;
        let sampler = NeighborSampler::new(inst.sampler_seed, inst.fanout.clone());
        for block in &partition(g, inst.batch_nodes) {
            let sub = sampler.sample_block(g, inst.salt, block);
            prop_assert!(sub.num_nodes() >= block.len());
            for local in 0..sub.num_nodes() {
                let global = sub.global_of(local);
                prop_assert!(global < g.num_nodes(), "dangling global id");
                prop_assert_eq!(sub.local_of(global), Some(local), "remap round-trip");
                for &lu in sub.neighbors_of(local) {
                    prop_assert!(lu < sub.num_nodes(), "dangling local id");
                    prop_assert!(
                        g.has_edge(global, sub.global_of(lu)),
                        "sampled edge {}-{} is not a parent edge",
                        global,
                        sub.global_of(lu)
                    );
                }
            }
            prop_assert_eq!(sub.targets().len(), block.len());
            for (&t, &v) in sub.targets().iter().zip(block) {
                prop_assert_eq!(sub.global_of(t), v, "target remap");
            }
        }
        // The fanout bound holds per (layer, node) draw.
        for (layer, &f) in inst.fanout.iter().enumerate() {
            for v in 0..g.num_nodes() {
                let picks = sampler.sample_neighbors(g, inst.salt, layer, v);
                let bound = if f == 0 { g.degree(v) } else { f.min(g.degree(v)) };
                prop_assert_eq!(picks.len(), bound, "fanout bound at node {}", v);
                prop_assert!(picks.windows(2).all(|w| w[0] < w[1]), "not sorted");
            }
        }
    }

    /// Sampling is a pure function of `(seed, salt, layer, node)`: repeated
    /// draws, draws interleaved with other nodes, and draws in reverse node
    /// order all agree.
    #[test]
    fn sampling_is_pure_and_call_order_independent(inst in instance()) {
        let g = &inst.graph;
        let sampler = NeighborSampler::new(inst.sampler_seed, inst.fanout.clone());
        let layer = inst.fanout.len() - 1;
        let forward: Vec<Vec<usize>> = (0..g.num_nodes())
            .map(|v| sampler.sample_neighbors(g, inst.salt, layer, v))
            .collect();
        let mut reverse: Vec<Vec<usize>> = (0..g.num_nodes()).rev()
            .map(|v| sampler.sample_neighbors(g, inst.salt, layer, v))
            .collect();
        reverse.reverse();
        prop_assert_eq!(&forward, &reverse, "call order changed a sample");
        // Interleave with fresh sampler clones: still identical.
        let again: Vec<Vec<usize>> = (0..g.num_nodes())
            .map(|v| {
                let _noise = sampler.sample_neighbors(
                    g,
                    inst.salt,
                    layer,
                    (v + 1) % g.num_nodes(),
                );
                sampler.clone().sample_neighbors(g, inst.salt, layer, v)
            })
            .collect();
        prop_assert_eq!(&forward, &again, "interleaved draws changed a sample");
    }

    /// An epoch's block samples are identical whether the blocks are
    /// expanded serially or through rayon's work-stealing pool — the
    /// property `BatchPlan::prepare_epoch` relies on.
    #[test]
    fn block_sampling_is_thread_schedule_independent(inst in instance()) {
        let g = &inst.graph;
        let sampler = NeighborSampler::new(inst.sampler_seed, inst.fanout.clone());
        let blocks = partition(g, inst.batch_nodes);
        let serial: Vec<_> = blocks
            .iter()
            .map(|b| sampler.sample_block(g, inst.salt, b))
            .collect();
        let parallel: Vec<_> = blocks
            .par_iter()
            .map(|b| sampler.sample_block(g, inst.salt, b))
            .collect();
        prop_assert_eq!(serial, parallel, "rayon schedule changed a subgraph");
    }
}
