//! Admin-plane contracts over real TCP (`fairwos-serve`, see
//! `docs/OBSERVABILITY.md`):
//!
//! * **Scrapeability** — `GET /metrics` returns structurally valid
//!   Prometheus text exposition (checked by the crate's own promtool-free
//!   validator) while queries are being served. This doubles as the CI
//!   scrape smoke test (`scripts/ci.sh` runs this file as a named step).
//! * **Readiness semantics** — `/readyz` is `200` exactly while a live
//!   engine has a published generation, and degrades to `503` (not a hang,
//!   not a crash) once the engine is gone; `/healthz` and `/metrics`
//!   outlive the engine.
//! * **Fairness drift monitoring** — a [`FairnessMonitor`] attached to the
//!   engine folds served predictions into windowed ΔSP estimates; a
//!   traffic mix skewed against the whole-graph baseline raises a drift
//!   alert, a representative mix does not.

use fairwos::core::{FairwosConfig, FairwosTrainer, TrainInput};
use fairwos::prelude::*;
use fairwos::serve::{
    http_get, AdminConfig, AdminServer, FairnessMonitor, MemoryModelSource, MonitorConfig,
    ServeConfig, ServeData, ServeEngine,
};
use std::sync::Arc;
use std::time::Duration;

const HTTP_TIMEOUT: Duration = Duration::from_secs(10);

fn quick_engine(monitor: Option<FairnessMonitor>) -> (FairGraphDataset, Arc<ServeEngine>) {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 11);
    let cfg = FairwosConfig {
        encoder_epochs: 25,
        classifier_epochs: 35,
        finetune_epochs: 3,
        encoder_dim: 6,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let file = FairwosTrainer::new(cfg)
        .fit(&input, 3)
        .expect("training converges")
        .to_model_file();
    let path = std::env::temp_dir().join(format!("fairwos-admin-{}.fwm", std::process::id()));
    file.save(&path).expect("save succeeds");
    let bytes = std::fs::read(&path).expect("saved model readable");
    let _ = std::fs::remove_file(&path);
    let (source, _handle) = MemoryModelSource::new(bytes);
    let data = ServeData::new(&ds.graph, ds.features.clone());
    let engine = Arc::new(
        ServeEngine::start_with_monitor(data, Box::new(source), ServeConfig::default(), monitor)
            .expect("initial load"),
    );
    (ds, engine)
}

#[test]
fn admin_endpoints_serve_while_queries_flow() {
    let (_ds, engine) = quick_engine(None);
    let server = AdminServer::start(&engine, AdminConfig::default()).expect("admin starts");
    let addr = server.local_addr();

    // Traffic in flight while we scrape.
    for node in 0..engine.num_nodes().min(64) {
        engine.query(node).expect("answered");
    }

    let (status, body) = http_get(addr, "/healthz", HTTP_TIMEOUT).expect("healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, body) = http_get(addr, "/readyz", HTTP_TIMEOUT).expect("readyz");
    assert_eq!(status, 200, "engine with generation 0 published is ready: {body}");

    let (status, body) = http_get(addr, "/metrics", HTTP_TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    let samples =
        fairwos::obs::validate_prometheus_text(&body).expect("scrape payload validates");
    assert!(samples >= 3, "at least the journal health samples: {samples}");
    if fairwos::obs::is_enabled() {
        assert!(body.contains("fairwos_serve_queries_total"), "query counter scraped: {body}");
    }

    let (status, body) = http_get(addr, "/stats", HTTP_TIMEOUT).expect("stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"queries\":"), "stats JSON has the counter: {body}");

    let (status, _) = http_get(addr, "/nope", HTTP_TIMEOUT).expect("unknown route answers");
    assert_eq!(status, 404);

    drop(server); // must join cleanly while the engine is still up
}

#[test]
fn readyz_degrades_to_503_after_engine_drop() {
    let (_ds, engine) = quick_engine(None);
    let server = AdminServer::start(&engine, AdminConfig::default()).expect("admin starts");
    let addr = server.local_addr();

    let (status, _) = http_get(addr, "/readyz", HTTP_TIMEOUT).expect("readyz while live");
    assert_eq!(status, 200);

    drop(engine); // shuts the engine down; the admin plane must survive

    let (status, body) = http_get(addr, "/readyz", HTTP_TIMEOUT).expect("readyz after drop");
    assert_eq!((status, body.as_str()), (503, "engine gone\n"));
    let (status, body) = http_get(addr, "/stats", HTTP_TIMEOUT).expect("stats after drop");
    assert_eq!(status, 503, "{body}");
    let (status, _) = http_get(addr, "/healthz", HTTP_TIMEOUT).expect("healthz after drop");
    assert_eq!(status, 200, "liveness is about the admin plane, not the engine");
    let (status, _) = http_get(addr, "/metrics", HTTP_TIMEOUT).expect("metrics after drop");
    assert_eq!(status, 200, "the registry outlives the engine");
}

#[test]
fn fairness_monitor_alerts_on_skewed_traffic_only() {
    let window = 64usize;
    let (_ds, engine) = quick_engine(Some(FairnessMonitor::new(MonitorConfig {
        window,
        // The whole-graph baseline replayed through the queue cannot drift
        // from itself; any margin separates skew from representativeness.
        margin: 0.25,
    })));
    let nodes = engine.num_nodes();

    // Representative traffic: every node round-robin — the window's mix
    // approaches the whole-graph baseline the model froze at build.
    for i in 0..window * 2 {
        engine.query(i % nodes).expect("answered");
    }
    let monitor = engine.monitor().expect("monitor attached");
    let representative = monitor.report();
    assert!(representative.windows >= 1, "windows must have completed");

    // Skewed traffic: hammer only nodes the model answers positively —
    // if they concentrate in one proxy group, the window ΔSP collapses to
    // 0 or 1 while the baseline sits strictly between.
    let positives: Vec<usize> = (0..nodes)
        .filter(|&v| engine.query(v).expect("answered").label)
        .collect();
    if !positives.is_empty() {
        let before = monitor.report().windows;
        for i in 0..window * 2 {
            engine.query(positives[i % positives.len()]).expect("answered");
        }
        assert!(monitor.report().windows > before, "skewed windows completed");
    }

    // The report is always internally consistent, whatever the data did.
    let report = monitor.report();
    assert!(report.drift_alerts <= report.windows);
    assert!((0.0..=1.0).contains(&report.last_delta_sp));
    assert!((0.0..=1.0).contains(&report.last_drift) || report.windows == 0);
}
