//! Serving-under-load contracts (`fairwos-serve`, see `docs/SERVING.md`):
//!
//! * **Zero drops** — client threads hammer the engine while a reloader
//!   swaps models; every accepted query is answered, none error.
//! * **Generation attribution** — every response carries exactly one
//!   generation stamp, and its probability bit-equals that generation's
//!   reference table (`FairwosModelFile::restore` + `predict_probs`), so a
//!   response can never mix two models.
//! * **Deterministic replay** — replaying a query log against a generation
//!   is bit-identical to what any live interleaving (any thread count,
//!   batch size, or arrival order) received from that generation.

use fairwos::core::{FairwosConfig, FairwosModelFile, FairwosTrainer, TrainInput};
use fairwos::prelude::*;
use fairwos::serve::{
    replay, MemoryModelSource, ServableModel, ServeConfig, ServeData, ServeEngine,
};
use std::sync::Arc;
use std::thread;

/// Trains one quick model on `ds` from `seed`; different seeds give
/// genuinely different weights, so the per-generation tables differ.
fn train_file(ds: &FairGraphDataset, seed: u64) -> FairwosModelFile {
    let cfg = FairwosConfig {
        encoder_epochs: 25,
        classifier_epochs: 35,
        finetune_epochs: 3,
        encoder_dim: 6,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    FairwosTrainer::new(cfg)
        .fit(&input, seed)
        .expect("training converges")
        .to_model_file()
}

/// Sealed on-disk bytes for `file` (save + read back a temp sibling).
fn sealed_bytes(file: &FairwosModelFile, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "fairwos-serve-conc-{tag}-{}.fwm",
        std::process::id()
    ));
    file.save(&path).expect("save succeeds");
    let bytes = std::fs::read(&path).expect("saved model readable");
    let _ = std::fs::remove_file(&path);
    bytes
}

/// Reference probability table for `file`: the independently implemented
/// restore path, which the serve precompute must match bit-for-bit.
fn reference_probs(file: &FairwosModelFile, ds: &FairGraphDataset) -> Vec<f32> {
    file.restore(&ds.graph, &ds.features)
        .expect("restore succeeds")
        .predict_probs()
}

#[test]
fn hot_reload_under_load_drops_nothing_and_attributes_every_response() {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 11);
    let files: Vec<FairwosModelFile> = (0..3).map(|s| train_file(&ds, s)).collect();
    let tables: Vec<Vec<f32>> = files.iter().map(|f| reference_probs(f, &ds)).collect();
    // The attribution check below is only meaningful if generations differ.
    assert!(
        tables[0] != tables[1] && tables[1] != tables[2],
        "differently seeded models must predict differently"
    );

    let (source, handle) = MemoryModelSource::new(sealed_bytes(&files[0], "g0"));
    let engine = Arc::new(
        ServeEngine::start(
            ServeData::new(&ds.graph, ds.features.clone()),
            Box::new(source),
            ServeConfig {
                workers: 3,
                queue_capacity: 64,
                max_batch: 16,
                ..ServeConfig::default()
            },
        )
        .expect("initial load"),
    );
    let nodes = engine.num_nodes();

    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 400;
    const RELOADS: usize = 6;

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let engine = Arc::clone(&engine);
            thread::spawn(move || {
                let mut responses = Vec::with_capacity(QUERIES_PER_CLIENT);
                for i in 0..QUERIES_PER_CLIENT {
                    let node = (c * 131 + i * 17) % nodes;
                    // Zero-drop: every accepted query must be answered.
                    let pred = engine.query(node).expect("query answered");
                    responses.push(pred);
                }
                responses
            })
        })
        .collect();

    // Reload while the clients hammer: cycle through the three artifacts.
    let mut published = vec![0u64];
    for r in 0..RELOADS {
        let next = (r + 1) % files.len();
        handle.set(sealed_bytes(&files[next], "swap"));
        let generation = engine.reload().expect("healthy reload succeeds");
        assert_eq!(generation, r as u64 + 1, "generations are sequential");
        published.push(generation);
        thread::sleep(std::time::Duration::from_millis(5));
    }

    let mut answered = 0usize;
    for client in clients {
        for pred in client.join().expect("client thread finishes") {
            answered += 1;
            // Attribution: the stamp names a generation that was actually
            // published, and the probability bit-equals that generation's
            // reference table — the response belongs to exactly one model.
            assert!(
                published.contains(&pred.generation),
                "unknown generation {}",
                pred.generation
            );
            let file_idx = pred.generation as usize % files.len();
            assert_eq!(
                pred.prob, tables[file_idx][pred.node],
                "node {} under generation {} mismatches its table",
                pred.node, pred.generation
            );
            assert_eq!(pred.label, pred.prob >= 0.5);
        }
    }
    assert_eq!(
        answered,
        CLIENTS * QUERIES_PER_CLIENT,
        "a response was dropped"
    );

    let stats = engine.stats();
    assert_eq!(stats.reloads, RELOADS as u64);
    assert_eq!(stats.reloads_rejected, 0);
    assert!(
        stats.queries >= (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "stats undercount: {} queries",
        stats.queries
    );
    let final_generation = engine.generation();
    assert_eq!(final_generation, RELOADS as u64);
    Arc::try_unwrap(engine)
        .unwrap_or_else(|_| panic!("all client clones joined"))
        .shutdown();
}

#[test]
fn batched_queries_are_answered_under_exactly_one_generation() {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 12);
    let file = train_file(&ds, 0);
    let (source, _handle) = MemoryModelSource::new(sealed_bytes(&file, "batch"));
    let engine = ServeEngine::start(
        ServeData::new(&ds.graph, ds.features.clone()),
        Box::new(source),
        ServeConfig::default(),
    )
    .expect("initial load");

    let nodes: Vec<usize> = (0..engine.num_nodes()).rev().collect();
    let batch = engine.query_batch(&nodes).expect("batch answered");
    assert_eq!(batch.len(), nodes.len());
    let table = reference_probs(&file, &ds);
    for (pred, &n) in batch.iter().zip(&nodes) {
        assert_eq!(pred.node, n, "input order preserved");
        assert_eq!(pred.generation, 0, "one generation per batch");
        assert_eq!(pred.prob, table[n]);
    }
    engine.shutdown();
}

#[test]
fn replaying_a_query_log_is_bit_identical_to_any_live_interleaving() {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 13);
    let file = train_file(&ds, 0);
    let data = ServeData::new(&ds.graph, ds.features.clone());
    let n = data.num_nodes();
    let log: Vec<usize> = (0..1500).map(|i| (i * 37 + 11) % n).collect();

    // The offline replay: one frozen generation, arbitrary batch size.
    let model = ServableModel::build(&file, &data, 0).expect("build succeeds");
    let baseline = replay(&model, &log, 16);
    assert_eq!(baseline.len(), log.len());

    // Replay is invariant to batch boundaries…
    for max_batch in [1usize, 7, 64, 4096] {
        assert_eq!(replay(&model, &log, max_batch), baseline);
    }

    // …and a live engine — different worker counts, different arrival
    // interleavings through the coalescing queue — answers the same log
    // with bit-identical responses.
    for workers in [1usize, 4] {
        let (source, _handle) = MemoryModelSource::new(sealed_bytes(&file, "replay"));
        let engine = Arc::new(
            ServeEngine::start(
                ServeData::new(&ds.graph, ds.features.clone()),
                Box::new(source),
                ServeConfig {
                    workers,
                    queue_capacity: 32,
                    max_batch: 8,
                    ..ServeConfig::default()
                },
            )
            .expect("initial load"),
        );
        let mid = log.len() / 2;
        let halves: Vec<Vec<usize>> = vec![log[..mid].to_vec(), log[mid..].to_vec()];
        let mut live: Vec<Vec<_>> = halves
            .into_iter()
            .map(|half| {
                let engine = Arc::clone(&engine);
                thread::spawn(move || {
                    half.iter()
                        .map(|&node| engine.query(node).expect("query answered"))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("half finishes"))
            .collect();
        let second = live.pop().expect("two halves");
        let mut answers = live.pop().expect("two halves");
        answers.extend(second);
        assert_eq!(answers, baseline, "live serving diverged from replay");
        Arc::try_unwrap(engine)
            .unwrap_or_else(|_| panic!("all clones joined"))
            .shutdown();
    }
}
