//! Steady-state allocation budget for the training hot path.
//!
//! The `tensor/alloc/bytes` counter (armed by the `obs` feature) measures
//! every `Matrix` allocation that goes through the `Matrix::full` funnel —
//! i.e. every `zeros`/`ones`/`full` call, including the ones a cold
//! `Workspace` pool falls back to. After the warm-up epochs have populated
//! the pool, a steady-state fine-tuning epoch should draw **all** of its
//! activation/gradient buffers from the pool and allocate (essentially)
//! nothing.
//!
//! Measuring "bytes per steady epoch" directly is impossible from outside
//! the trainer, so the test runs the pipeline twice with the same seed,
//! identical in every knob except `finetune_epochs` (3 vs 8). Stages 1–2
//! and the first 3 fine-tuning epochs are bit-identical between the runs,
//! so the difference of the two `tensor/alloc/bytes` totals is exactly the
//! allocation cost of the 5 extra steady-state epochs.
//!
//! This binary holds only this test: the obs registry is process-global,
//! and Rust runs tests within one binary concurrently — any other obs-reset
//! test in the same binary would race the counters.

use fairwos::obs;
use fairwos::prelude::*;

fn config(finetune_epochs: usize) -> FairwosConfig {
    FairwosConfig {
        encoder_epochs: 30,
        classifier_epochs: 40,
        finetune_epochs,
        learning_rate: 0.01,
        patience: 20,
        encoder_dim: 8,
        alpha: 0.5,
        ..FairwosConfig::paper_default(Backbone::Gcn)
    }
}

/// Runs a full fit and returns the `tensor/alloc/bytes` total it produced.
fn alloc_bytes_of_fit(ds: &FairGraphDataset, finetune_epochs: usize, seed: u64) -> u64 {
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    obs::reset();
    let _ = FairwosTrainer::new(config(finetune_epochs)).fit(&input, seed).expect("training converges");
    let metrics = obs::RunMetrics::capture("Fairwos", "alloc-budget", "GCN", seed, 0.0);
    metrics
        .counters
        .iter()
        .find(|c| c.label == "tensor/alloc/bytes")
        .map_or(0, |c| c.total)
}

#[test]
fn steady_state_epochs_stay_within_alloc_budget() {
    if !obs::is_enabled() {
        eprintln!("alloc_budget: skipped (build without the `obs` feature)");
        return;
    }
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.4), 5);
    let short = alloc_bytes_of_fit(&ds, 3, 7);
    let long = alloc_bytes_of_fit(&ds, 8, 7);
    assert!(
        long >= short,
        "longer run allocated less ({long} < {short}); the runs are not comparable"
    );
    // 5 extra steady-state epochs. The budget is absolute, not relative:
    // a single un-pooled N×hidden activation (~160 nodes × 16 floats × 4
    // bytes ≈ 10 KiB) re-allocated per epoch would blow through it.
    let steady = long - short;
    const BUDGET: u64 = 64 * 1024;
    assert!(
        steady <= BUDGET,
        "5 steady-state fine-tuning epochs allocated {steady} bytes \
         (budget {BUDGET}); a hot-path buffer is no longer drawn from the \
         workspace pool"
    );

    // Sanity: the pipeline as a whole does allocate (warm-up, weights,
    // dataset-independent buffers) — the counter itself is live.
    assert!(short > 0, "tensor/alloc/bytes counter recorded nothing");
}
