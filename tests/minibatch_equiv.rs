//! Full-batch ≡ mini-batch equivalence suite.
//!
//! The mini-batch trainer is built on *restriction* (local propagation
//! matrices keep the full matrices' values verbatim on the sampled edge
//! set) and a dedicated sampler RNG stream (scheduling draws never touch
//! the weight-init stream). Together these give a sharp contract:
//!
//! * **One block covering the graph at infinite fanout** is not
//!   "approximately" full-batch training — it executes the *same floating
//!   point program*, so predictions, λ, and every loss curve must match
//!   the untouched full-batch path bit for bit.
//! * **Real mini-batching** (several blocks, finite fanout) is genuine
//!   stochastic training: a different optimization trajectory with the
//!   same objective. There the contract is metric-level: the model still
//!   learns (loss decreases), and utility/fairness metrics land in the
//!   same neighborhood as the full-batch run.

use fairwos::prelude::*;

fn dataset() -> FairGraphDataset {
    FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.4), 5)
}

/// Short schedule with early stopping disabled (fixed epoch counts make
/// the full/mini loss curves comparable index by index).
fn base_config() -> FairwosConfig {
    FairwosConfig {
        encoder_dim: 8,
        encoder_epochs: 40,
        classifier_epochs: 60,
        finetune_epochs: 6,
        learning_rate: 0.01,
        patience: 100,
        ..FairwosConfig::fast(Backbone::Gcn)
    }
}

fn input_of(ds: &FairGraphDataset) -> TrainInput<'_> {
    TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    }
}

fn eval_of(ds: &FairGraphDataset, probs: &[f32]) -> EvalReport {
    let test_probs: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
    EvalReport::compute(
        &test_probs,
        &ds.labels_of(&ds.split.test),
        &ds.sensitive_of(&ds.split.test),
    )
}

#[test]
fn single_block_infinite_fanout_is_bit_identical_to_full_batch() {
    let ds = dataset();
    let full = FairwosTrainer::new(base_config())
        .fit(&input_of(&ds), 42)
        .expect("full-batch training converges");

    // One block holds every node (batch_nodes > n) and fanout 0 = all
    // neighbors: the restricted propagation matrices, the loss mask, and
    // the counterfactual candidate set all coincide with the full-batch
    // path's, so the θ trajectory is the same floating-point program.
    let mini_cfg = FairwosConfig {
        minibatch: Some(MinibatchConfig::new(ds.graph.num_nodes() + 1, vec![0])),
        ..base_config()
    };
    let mini = FairwosTrainer::new(mini_cfg)
        .fit(&input_of(&ds), 42)
        .expect("mini-batch training converges");

    assert_eq!(
        full.predict_probs(),
        mini.predict_probs(),
        "single-block ∞-fanout mini-batch diverged from full-batch"
    );
    assert_eq!(full.lambda(), mini.lambda(), "λ diverged");
    // Histories carry every per-epoch loss of all three stages; their JSON
    // is a faithful bit-level witness for the f32/f64 fields.
    assert_eq!(
        serde_json::to_string(&full.history).expect("history serializes"),
        serde_json::to_string(&mini.history).expect("history serializes"),
        "per-epoch training histories diverged"
    );
}

/// Shared tolerance harness for genuine mini-batching: same data, same
/// seed, different optimization schedule.
fn assert_minibatch_lands_near_full_batch(mb: MinibatchConfig) {
    let ds = dataset();
    let input = input_of(&ds);
    let full = FairwosTrainer::new(base_config())
        .fit(&input, 42)
        .expect("full-batch training converges");
    let mini = FairwosTrainer::new(FairwosConfig {
        minibatch: Some(mb),
        ..base_config()
    })
    .fit(&input, 42)
    .expect("mini-batch training converges");

    // The mini-batch model is a valid classifier that actually trained.
    let probs = mini.predict_probs();
    assert!(
        probs
            .iter()
            .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
        "mini-batch probabilities out of range"
    );
    let losses = &mini.history.classifier_losses;
    let (first, last) = (losses[0], *losses.last().expect("losses recorded"));
    assert!(
        last < first * 0.95,
        "mini-batch classifier loss did not decrease ({first} → {last})"
    );

    // Metric-level agreement with the full-batch run. These are loose by
    // design — SGD over sampled subgraphs is a different trajectory — but
    // tight enough to catch wrong normalization (restricted matrices that
    // renormalize instead of restricting overshoot these immediately).
    let full_last = *full
        .history
        .classifier_losses
        .last()
        .expect("losses recorded");
    assert!(
        (last - full_last).abs() <= 0.5,
        "final classifier loss too far from full-batch: {last} vs {full_last}"
    );
    let (ef, em) = (eval_of(&ds, &full.predict_probs()), eval_of(&ds, &probs));
    for (name, f, m, tol) in [
        ("accuracy", ef.accuracy, em.accuracy, 0.3),
        ("f1", ef.f1, em.f1, 0.4),
        ("delta_sp", ef.delta_sp, em.delta_sp, 0.5),
        ("delta_eo", ef.delta_eo, em.delta_eo, 0.5),
    ] {
        assert!(
            (f - m).abs() <= tol,
            "{name} too far from full-batch: full {f} vs mini {m} (tol {tol})"
        );
    }
}

#[test]
fn multi_batch_infinite_fanout_matches_within_tolerance() {
    // Four-ish blocks of ≤ 48 seeds, every neighborhood kept whole: the
    // stochasticity comes purely from per-block gradient steps.
    assert_minibatch_lands_near_full_batch(MinibatchConfig::new(48, vec![0]));
}

#[test]
fn finite_fanout_matches_within_tolerance() {
    // Blocks *and* sampled neighborhoods (3 neighbors per node per layer):
    // the full GraphSAGE-style regime, including epoch-salted resampling.
    assert_minibatch_lands_near_full_batch(MinibatchConfig::new(48, vec![3]));
}
