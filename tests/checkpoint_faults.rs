//! Fault-injection matrix for crash-consistent training persistence: every
//! scheduled storage fault either heals transparently (write retries,
//! newest-valid-generation fallback, divergence rollback) or surfaces as a
//! typed [`TrainError`] — never a panic, and never a silently different
//! model. Resume correctness is always checked bit-for-bit against an
//! uninterrupted run of the same seed and config.

use fairwos::core::{FaultPlan, FaultyCheckpointStore};
use fairwos::prelude::*;

/// Short schedule with early stopping disabled (patience > classifier
/// epochs) so every run writes the same deterministic checkpoint sequence:
/// the stage-2 boundary, eight stage-2 interval generations, the stage-3
/// boundary, and one stage-3 interval generation.
fn recovery_config() -> FairwosConfig {
    FairwosConfig {
        encoder_dim: 6,
        encoder_epochs: 40,
        classifier_epochs: 60,
        finetune_epochs: 7,
        learning_rate: 0.02,
        patience: 100,
        recovery: RecoveryConfig {
            checkpoint_interval: 7,
            retain: 100,
            ..RecoveryConfig::default()
        },
        ..FairwosConfig::fast(Backbone::Gcn)
    }
}

fn small_dataset() -> FairGraphDataset {
    FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), 5)
}

fn input_of(ds: &FairGraphDataset) -> TrainInput<'_> {
    TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    }
}

#[test]
fn transient_write_failures_heal_within_the_retry_budget() {
    let ds = small_dataset();
    let cfg = recovery_config();
    let plain = FairwosTrainer::new(cfg.clone())
        .fit(&input_of(&ds), 5)
        .expect("training converges");

    // Attempts 1 and 5 fail transiently; with write_attempts = 3 both
    // saves succeed on their next attempt without the trainer noticing.
    let plan = FaultPlan {
        fail_writes: vec![1, 5],
        ..FaultPlan::default()
    };
    let mut store = FaultyCheckpointStore::new(MemoryCheckpointStore::new(), plan);
    let trained = FairwosTrainer::new(cfg)
        .fit_resumable(&input_of(&ds), 5, &mut store)
        .expect("transient write failures must not abort training");

    assert_eq!(plain.predict_probs(), trained.predict_probs());
    assert_eq!(plain.lambda(), trained.lambda());
    let generations = store.inner().len();
    assert_eq!(
        store.writes_seen(),
        generations + 2,
        "every injected failure costs exactly one retry attempt"
    );
}

#[test]
fn exhausted_write_budget_surfaces_a_typed_persist_error() {
    let ds = small_dataset();
    let cfg = recovery_config(); // write_attempts = 3
    let plan = FaultPlan {
        fail_writes: vec![1, 2, 3],
        ..FaultPlan::default()
    };
    let mut store = FaultyCheckpointStore::new(MemoryCheckpointStore::new(), plan);
    let err = FairwosTrainer::new(cfg)
        .fit_resumable(&input_of(&ds), 5, &mut store)
        .expect_err("a persistently failing store must abort training");

    assert!(
        matches!(err, TrainError::Persist(_)),
        "expected a persistence error, got: {err}"
    );
    assert!(err.divergence().is_none());
    assert_eq!(
        store.writes_seen(),
        3,
        "the retry loop stops at the configured budget"
    );
    assert!(
        store.inner().is_empty(),
        "no generation ever reached the store"
    );
}

#[test]
fn resume_skips_torn_corrupt_and_vanished_generations() {
    let ds = small_dataset();
    let trainer = FairwosTrainer::new(recovery_config());
    let full = trainer.fit(&input_of(&ds), 5).expect("training converges");

    // Harvest the checkpoint sequence of a clean resumable run.
    let mut clean = MemoryCheckpointStore::new();
    trainer
        .fit_resumable(&input_of(&ds), 5, &mut clean)
        .expect("training converges");
    let generations = clean.generations().expect("in-memory store is infallible");
    let n = generations.len();
    assert!(
        n >= 4,
        "need several generations to corrupt, got {generations:?}"
    );

    // Rebuild a crashed store whose newest three generations are a torn
    // write, footer bit rot, and a file that vanished before the read.
    let mut inner = MemoryCheckpointStore::new();
    for &generation in &generations {
        let mut blob = clean
            .read(generation)
            .expect("in-memory store is infallible");
        if generation == generations[n - 1] {
            blob.truncate(blob.len() / 2);
        }
        if generation == generations[n - 2] {
            let last = blob.len() - 1;
            blob[last] ^= 0xFF;
        }
        inner
            .write(generation, &blob)
            .expect("in-memory store is infallible");
    }
    let plan = FaultPlan {
        vanish_reads: vec![generations[n - 3]],
        ..FaultPlan::default()
    };
    let mut crashed = FaultyCheckpointStore::new(inner, plan);

    // Resume must fall back to the newest intact generation and still end
    // bit-identical to the uninterrupted run.
    let resumed = trainer
        .fit_resumable(&input_of(&ds), 5, &mut crashed)
        .expect("resume heals by falling back to an older generation");
    assert_eq!(full.predict_probs(), resumed.predict_probs());
    assert_eq!(full.lambda(), resumed.lambda());
    assert_eq!(
        full.history.classifier_losses,
        resumed.history.classifier_losses
    );
}

#[test]
fn fs_store_resumes_after_the_newest_file_is_truncated() {
    let dir = std::env::temp_dir().join(format!("fairwos-ckpt-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let ds = small_dataset();
    let trainer = FairwosTrainer::new(recovery_config());
    let full = trainer.fit(&input_of(&ds), 5).expect("training converges");

    let mut store = FsCheckpointStore::new(dir.clone());
    trainer
        .fit_resumable(&input_of(&ds), 5, &mut store)
        .expect("training converges");
    let generations = store.generations().expect("checkpoint dir is listable");
    assert!(!generations.is_empty());

    // Tear the newest on-disk file in half, as a crash mid-write would
    // without the atomic temp + rename protocol.
    let newest = generations[generations.len() - 1];
    let path = dir.join(format!("ckpt-{newest:010}.fwck"));
    let bytes = std::fs::read(&path).expect("newest checkpoint file readable");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate newest checkpoint");

    let mut reopened = FsCheckpointStore::new(dir.clone());
    let resumed = trainer
        .fit_resumable(&input_of(&ds), 5, &mut reopened)
        .expect("resume falls back past the torn file");
    assert_eq!(full.predict_probs(), resumed.predict_probs());

    let _ = std::fs::remove_dir_all(&dir);
}

/// The recovery schedule on the mini-batch path: three blocks of ≤ 40
/// seeds per epoch (nba × 0.3 ≈ 120 nodes), finite fanout, and a cursor
/// checkpoint after every batch.
fn minibatch_recovery_config() -> FairwosConfig {
    FairwosConfig {
        minibatch: Some(MinibatchConfig {
            checkpoint_batches: 1,
            ..MinibatchConfig::new(40, vec![3])
        }),
        ..recovery_config()
    }
}

#[test]
fn mid_epoch_resume_is_bit_identical_to_uninterrupted() {
    use fairwos::core::checkpoint::decode_checkpoint;

    let ds = small_dataset();
    let trainer = FairwosTrainer::new(minibatch_recovery_config());
    let full = trainer.fit(&input_of(&ds), 5).expect("training converges");

    // Harvest the generation sequence of a clean resumable run. Mid-epoch
    // generations are exactly the ones whose decoded blob carries a batch
    // cursor.
    let mut clean = MemoryCheckpointStore::new();
    trainer
        .fit_resumable(&input_of(&ds), 5, &mut clean)
        .expect("training converges");
    let generations = clean.generations().expect("in-memory store is infallible");
    let mid: Vec<u64> = generations
        .iter()
        .copied()
        .filter(|&g| {
            let blob = clean.read(g).expect("in-memory store is infallible");
            decode_checkpoint(&blob)
                .expect("clean blobs decode")
                .batch_cursor
                .is_some()
        })
        .collect();
    assert!(
        mid.len() >= 2,
        "checkpoint_batches = 1 over ≥ 2 batches/epoch must leave mid-epoch \
         generations, got {generations:?}"
    );

    // Crash immediately after a mid-epoch write — once at the oldest
    // retained cursor and once at the newest (which lands inside the
    // stage-3 fine-tune on this schedule) — and resume from a store that
    // holds nothing newer. Resume restarts the epoch's remaining batches
    // from the cursor and must end bit-identical to the uninterrupted fit.
    for &cut in &[mid[0], mid[mid.len() - 1]] {
        let mut crashed = MemoryCheckpointStore::new();
        for &g in generations.iter().filter(|&&g| g <= cut) {
            let blob = clean.read(g).expect("in-memory store is infallible");
            crashed
                .write(g, &blob)
                .expect("in-memory store is infallible");
        }
        let resumed = trainer
            .fit_resumable(&input_of(&ds), 5, &mut crashed)
            .expect("mid-epoch resume converges");
        assert_eq!(
            full.predict_probs(),
            resumed.predict_probs(),
            "resume from mid-epoch generation {cut} diverged"
        );
        assert_eq!(full.lambda(), resumed.lambda());
        assert_eq!(
            full.history.classifier_losses,
            resumed.history.classifier_losses
        );
        assert_eq!(full.history.finetune.len(), resumed.history.finetune.len());
    }
}

#[test]
fn minibatch_checkpoint_fields_survive_the_serde_round_trip() {
    use fairwos::core::checkpoint::{decode_checkpoint, encode_checkpoint};

    // FW009 keeps the manifest in sync with the struct; this pins the other
    // half of the contract — the new mini-batch fields actually travel
    // through the sealed-blob round trip instead of deserializing to their
    // `#[serde(default)]` of `None`.
    let ds = small_dataset();
    let mut store = MemoryCheckpointStore::new();
    FairwosTrainer::new(minibatch_recovery_config())
        .fit_resumable(&input_of(&ds), 5, &mut store)
        .expect("training converges");
    let generations = store.generations().expect("in-memory store is infallible");

    let ckpt = generations
        .iter()
        .rev()
        .find_map(|&g| {
            let blob = store.read(g).expect("in-memory store is infallible");
            let c = decode_checkpoint(&blob).expect("clean blobs decode");
            c.batch_cursor.is_some().then_some(c)
        })
        .expect("the schedule writes at least one mid-epoch generation");
    assert!(
        ckpt.sampler_rng.is_some(),
        "mini-batch checkpoints must carry the sampler RNG position"
    );

    let blob = encode_checkpoint(&ckpt).expect("checkpoint re-encodes");
    assert!(
        String::from_utf8_lossy(&blob).contains("\"sampler_rng\"")
            && String::from_utf8_lossy(&blob).contains("\"batch_cursor\""),
        "the new manifest fields must be spelled out in the stored JSON"
    );
    let back = decode_checkpoint(&blob).expect("re-encoded checkpoint decodes");
    assert_eq!(
        back.sampler_rng, ckpt.sampler_rng,
        "sampler RNG state lost in round trip"
    );
    assert_eq!(
        back.batch_cursor, ckpt.batch_cursor,
        "batch cursor lost in round trip"
    );
}

#[test]
fn divergence_rolls_back_and_retries_with_scaled_lr() {
    let ds = small_dataset();
    let cfg = FairwosConfig {
        use_encoder: false,
        learning_rate: 1e4,
        recovery: RecoveryConfig {
            checkpoint_interval: 7,
            retain: 100,
            max_rollbacks: 1,
            lr_backoff: 1e-6,
            ..RecoveryConfig::default()
        },
        ..recovery_config()
    };
    let mut store = MemoryCheckpointStore::new();
    // The first attempt diverges within the watchdog window; the rollback
    // restarts from the stage-2 boundary checkpoint at lr 1e4 × 1e-6 and
    // converges.
    let trained = FairwosTrainer::new(cfg)
        .fit_resumable(&input_of(&ds), 7, &mut store)
        .expect("rollback with a backed-off learning rate must converge");
    let probs = trained.predict_probs();
    assert!(probs
        .iter()
        .all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
    assert!(!store.is_empty());
}

#[test]
fn invalid_input_is_a_typed_error_not_a_panic() {
    let ds = small_dataset();
    let mut input = input_of(&ds);
    input.train = &[];
    let err = FairwosTrainer::new(recovery_config())
        .fit(&input, 0)
        .expect_err("an empty train split cannot be fitted");
    assert!(
        matches!(err, TrainError::Input(InputError::EmptyTrainSplit)),
        "{err}"
    );
    assert!(err.divergence().is_none());
}
