//! Serving determinism property (`fairwos-serve`): the precomputed
//! probability table a [`ServableModel`] freezes at build time is
//! **bit-for-bit** the per-query forward pass — on random Erdős–Rényi
//! graphs, random feature matrices, randomly initialized weights, and all
//! four backbones. Equivalently: precompute ≡ per-query forward ≡ the
//! independently implemented restore path (`FairwosModelFile::restore`).

use fairwos::core::persist::MODEL_FILE_VERSION;
use fairwos::core::{FairwosConfig, FairwosModelFile};
use fairwos::graph::generate::erdos_renyi;
use fairwos::graph::Graph;
use fairwos::nn::loss::sigmoid;
use fairwos::nn::{Backbone, Gnn, GnnConfig, GraphContext};
use fairwos::serve::{replay, ServableModel, ServeData};
use fairwos::tensor::{seeded_rng, Matrix};
use proptest::prelude::*;
use rand::Rng;

const BACKBONES: [Backbone; 4] = [Backbone::Gcn, Backbone::Gin, Backbone::Sage, Backbone::Gat];

/// A model file with genuinely random (freshly initialized) weights whose
/// shapes match `config` by construction: the weights are exported from the
/// same `Gnn` the loader will rebuild.
fn random_model_file(config: &FairwosConfig, in_dim: usize, weight_seed: u64) -> FairwosModelFile {
    let mut gnn = Gnn::new(
        GnnConfig {
            backbone: config.backbone,
            in_dim,
            hidden_dim: config.hidden_dim,
            num_layers: config.num_layers,
            dropout: 0.0,
        },
        &mut seeded_rng(weight_seed),
    );
    let gnn_weights: Vec<Matrix> = gnn.params_mut().iter().map(|p| p.value.clone()).collect();
    FairwosModelFile {
        version: MODEL_FILE_VERSION,
        config: config.clone(),
        in_dim,
        encoder_weights: None,
        gnn_weights,
        lambda: vec![0.5, 0.5],
    }
}

/// Random node features in `[-1, 1]`.
fn random_features(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = seeded_rng(seed);
    let data: Vec<f32> = (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Matrix::from_vec(n, d, data)
}

/// The per-query forward pass, written out independently of the serve
/// crate: rebuild the modules, run one inference, squash to probabilities.
fn forward_reference(file: &FairwosModelFile, graph: &Graph, features: &Matrix) -> Vec<f32> {
    let (encoder, gnn) = file.build_modules().expect("modules rebuild");
    assert!(encoder.is_none(), "these files carry no encoder");
    let ctx = GraphContext::new(graph);
    sigmoid(&gnn.forward_inference(&ctx, features).logits).col(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn precompute_is_bitwise_the_per_query_forward(
        n in 8usize..32,
        d in 2usize..6,
        edge_p in 0.05f64..0.4,
        backbone_idx in 0usize..4,
        graph_seed in 0u64..1_000,
        weight_seed in 0u64..1_000,
    ) {
        let backbone = BACKBONES[backbone_idx];
        let config = FairwosConfig { hidden_dim: 5, num_layers: 2, ..FairwosConfig::fast(backbone) };
        let graph = erdos_renyi(n, edge_p, &mut seeded_rng(graph_seed));
        let features = random_features(n, d, graph_seed.wrapping_add(1));
        let file = random_model_file(&config, d, weight_seed);

        let expected = forward_reference(&file, &graph, &features);
        prop_assert_eq!(expected.len(), n);
        // Bitwise comparison below needs comparable floats (NaN != NaN);
        // fresh random weights keep everything finite in practice.
        prop_assume!(expected.iter().all(|p| p.is_finite()));

        // 1. Serve precompute ≡ per-query forward, bit for bit, node by node.
        let data = ServeData::new(&graph, features.clone());
        let model = ServableModel::build(&file, &data, 9).expect("build succeeds");
        prop_assert_eq!(model.num_nodes(), n);
        for v in 0..n {
            let pred = model.query_one(v);
            prop_assert_eq!(pred.prob, expected[v], "node {} backbone {:?}", v, backbone);
            prop_assert_eq!(pred.label, expected[v] >= 0.5);
            prop_assert_eq!(pred.generation, 9);
        }

        // 2. …and ≡ the restore path's probabilities.
        let restored = file.restore(&graph, &features).expect("restore succeeds");
        prop_assert_eq!(restored.predict_probs(), expected.clone());

        // 3. The batched replay path answers the same table in any batching.
        let log: Vec<usize> = (0..n).chain((0..n).rev()).collect();
        let out = replay(&model, &log, 5);
        prop_assert_eq!(out.len(), log.len());
        for (pred, &v) in out.iter().zip(&log) {
            prop_assert_eq!(pred.prob, expected[v]);
        }
    }

    #[test]
    fn feature_width_mismatch_is_always_a_typed_rejection(
        n in 8usize..24,
        d in 2usize..6,
        wrong_d in 2usize..8,
        seed in 0u64..500,
    ) {
        prop_assume!(wrong_d != d);
        let config = FairwosConfig { hidden_dim: 4, num_layers: 2, ..FairwosConfig::fast(Backbone::Gcn) };
        let graph = erdos_renyi(n, 0.2, &mut seeded_rng(seed));
        let file = random_model_file(&config, d, seed);
        let data = ServeData::new(&graph, random_features(n, wrong_d, seed));
        prop_assert!(ServableModel::build(&file, &data, 0).is_err());
    }
}
