//! Reload fault injection (`fairwos-serve`): a torn, bit-flipped, or
//! vanished model artifact must never reach serving — the reload is
//! rejected with a typed error, journaled as `serve/reload_rejected`, and
//! the previous generation keeps answering bit-identically. Mirrors the
//! `FaultyCheckpointStore` suite on the training side.
//!
//! Also pins the legacy read path: a plain-JSON (pre-footer) artifact loads
//! and serves through the same engine.

use fairwos::core::{FairwosConfig, FairwosModelFile, FairwosTrainer, TrainInput};
use fairwos::obs;
use fairwos::prelude::*;
use fairwos::serve::{
    FaultyModelSource, FsModelSource, MemoryModelSource, ServeConfig, ServeData, ServeEngine,
    ServeError, SourceFaultPlan,
};

fn quick_dataset_and_file(seed: u64) -> (FairGraphDataset, FairwosModelFile) {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.3), seed);
    let cfg = FairwosConfig {
        encoder_epochs: 25,
        classifier_epochs: 35,
        finetune_epochs: 3,
        encoder_dim: 6,
        ..FairwosConfig::fast(Backbone::Gcn)
    };
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let file = FairwosTrainer::new(cfg)
        .fit(&input, seed)
        .expect("training converges")
        .to_model_file();
    (ds, file)
}

fn sealed_bytes(file: &FairwosModelFile, tag: &str) -> Vec<u8> {
    let path = std::env::temp_dir().join(format!(
        "fairwos-serve-faults-{tag}-{}.fwm",
        std::process::id()
    ));
    file.save(&path).expect("save succeeds");
    let bytes = std::fs::read(&path).expect("saved model readable");
    let _ = std::fs::remove_file(&path);
    bytes
}

fn reference_probs(file: &FairwosModelFile, ds: &FairGraphDataset) -> Vec<f32> {
    file.restore(&ds.graph, &ds.features)
        .expect("restore succeeds")
        .predict_probs()
}

#[test]
fn broken_artifacts_keep_the_old_generation_serving() {
    let (ds, file) = quick_dataset_and_file(21);
    let table = reference_probs(&file, &ds);

    // Fetch 1 (startup) is healthy; fetches 2–4 observe the artifact torn,
    // bit-flipped, and vanished mid-swap; fetch 5 is healthy again.
    let (inner, handle) = MemoryModelSource::new(sealed_bytes(&file, "base"));
    let faulty = FaultyModelSource::new(
        inner,
        SourceFaultPlan {
            torn_fetches: vec![2],
            corrupt_fetches: vec![3],
            vanish_fetches: vec![4],
        },
    );
    let engine = ServeEngine::start(
        ServeData::new(&ds.graph, ds.features.clone()),
        Box::new(faulty),
        ServeConfig::default(),
    )
    .expect("healthy initial load");

    let check_serving_unchanged = |engine: &ServeEngine| {
        for node in [0usize, 3, 17] {
            let pred = engine.query(node).expect("query answered");
            assert_eq!(pred.generation, 0, "old generation must keep serving");
            assert_eq!(pred.prob, table[node], "old table must keep answering");
        }
    };

    for (attempt, kind) in ["torn", "corrupt", "vanished"].iter().enumerate() {
        let err = engine
            .reload()
            .expect_err("broken artifact must be rejected");
        assert!(
            matches!(err, ServeError::Reload(_)),
            "attempt {attempt} ({kind}): expected ServeError::Reload, got {err:?}"
        );
        assert_eq!(
            engine.generation(),
            0,
            "{kind} artifact changed the generation"
        );
        check_serving_unchanged(&engine);
        assert_eq!(engine.stats().reloads_rejected, attempt as u64 + 1);
        assert_eq!(engine.stats().reloads, 0);
    }

    // A rejected reload consumes no generation number: the next healthy
    // artifact publishes generation 1, not 4.
    let (_, file2) = quick_dataset_and_file(22);
    handle.set(sealed_bytes(&file2, "healthy"));
    assert_eq!(engine.reload().expect("healthy reload succeeds"), 1);
    let table2 = reference_probs(&file2, &ds);
    let pred = engine.query(5).expect("query answered");
    assert_eq!(pred.generation, 1);
    assert_eq!(pred.prob, table2[5]);

    // With obs armed, every rejection was journaled. The journal is
    // process-global and tests run in parallel, so filter to this engine's
    // source description rather than counting all serve alerts.
    if obs::is_enabled() {
        let events = obs::journal_events();
        let ours = "faulty(memory model source)";
        let rejected = events
            .iter()
            .filter(|e| {
                matches!(&e.event, obs::Event::Alert { code, message }
                    if code == "serve/reload_rejected" && message.contains(ours))
            })
            .count();
        assert_eq!(
            rejected, 3,
            "each rejection must journal serve/reload_rejected"
        );
        let published = events
            .iter()
            .filter(|e| {
                matches!(&e.event, obs::Event::Alert { code, message }
                    if code == "serve/reload" && message.contains(ours))
            })
            .count();
        assert_eq!(published, 1, "the healthy reload must journal serve/reload");
    }

    engine.shutdown();
}

#[test]
fn a_corrupt_initial_artifact_refuses_to_start() {
    let (ds, file) = quick_dataset_and_file(23);
    let mut bytes = sealed_bytes(&file, "corrupt-start");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let (source, _handle) = MemoryModelSource::new(bytes);
    let err = ServeEngine::start(
        ServeData::new(&ds.graph, ds.features.clone()),
        Box::new(source),
        ServeConfig::default(),
    )
    .err()
    .expect("corrupt artifact must not start serving");
    assert!(matches!(err, ServeError::Reload(_)), "got {err:?}");
}

#[test]
fn legacy_plain_json_artifacts_serve_identically_to_sealed_ones() {
    let (ds, file) = quick_dataset_and_file(24);
    let table = reference_probs(&file, &ds);

    // The pre-footer format: the JSON payload alone, no integrity trailer.
    let legacy = file.to_json().expect("serializes").into_bytes();
    let (source, _handle) = MemoryModelSource::new(legacy);
    let engine = ServeEngine::start(
        ServeData::new(&ds.graph, ds.features.clone()),
        Box::new(source),
        ServeConfig::default(),
    )
    .expect("legacy artifact loads");
    for node in 0..engine.num_nodes() {
        assert_eq!(engine.query(node).expect("answered").prob, table[node]);
    }
    engine.shutdown();
}

#[test]
fn fs_source_reload_picks_up_an_atomically_rewritten_file() {
    let (ds, file) = quick_dataset_and_file(25);
    let (_, file2) = quick_dataset_and_file(26);
    let path = std::env::temp_dir().join(format!(
        "fairwos-serve-fs-reload-{}.fwm",
        std::process::id()
    ));
    file.save(&path).expect("save succeeds");

    let engine = ServeEngine::start(
        ServeData::new(&ds.graph, ds.features.clone()),
        Box::new(FsModelSource::new(&path)),
        ServeConfig::default(),
    )
    .expect("initial load");
    assert_eq!(
        engine.query(0).expect("answered").prob,
        reference_probs(&file, &ds)[0]
    );

    // An external trainer atomically rewrites the artifact; reload serves it.
    file2.save(&path).expect("rewrite succeeds");
    assert_eq!(engine.reload().expect("reload succeeds"), 1);
    assert_eq!(
        engine.query(0).expect("answered").prob,
        reference_probs(&file2, &ds)[0]
    );

    // Unlinking the artifact breaks the *next* reload but not serving.
    std::fs::remove_file(&path).expect("unlink succeeds");
    assert!(
        engine.reload().is_err(),
        "vanished file must reject the reload"
    );
    assert_eq!(engine.generation(), 1, "generation 1 keeps serving");
    engine.shutdown();
}
