//! End-to-end shape assertions: the qualitative claims of the paper that
//! must hold for the reproduction to count (see DESIGN.md §3).
//!
//! Each assertion aggregates several seeded runs so the tests are stable;
//! the full-strength versions of these comparisons live in the `exp_*`
//! binaries.

use fairwos::prelude::*;

fn dataset() -> FairGraphDataset {
    // NBA at true size: the paper's high-bias small dataset.
    FairGraphDataset::generate(&DatasetSpec::nba(), 3)
}

fn input(ds: &FairGraphDataset) -> TrainInput<'_> {
    TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    }
}

fn mean_report(method: &dyn FairMethod, ds: &FairGraphDataset, seeds: &[u64]) -> (f64, f64, f64) {
    let (mut acc, mut sp, mut eo) = (0.0, 0.0, 0.0);
    for &seed in seeds {
        let probs = method.fit_predict(&input(ds), seed);
        let tp: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        let r = EvalReport::compute(&tp, &ds.labels_of(&ds.split.test), &ds.sensitive_of(&ds.split.test));
        acc += r.accuracy;
        sp += r.delta_sp;
        eo += r.delta_eo;
    }
    let n = seeds.len() as f64;
    (acc / n, sp / n, eo / n)
}

fn fairwos_config() -> FairwosConfig {
    // α = 4: the upper edge of the Fig. 6 sweet spot, where the fairness
    // effect is large enough to clear seed noise in a 6-run average.
    FairwosConfig { alpha: 4.0, finetune_epochs: 40, ..FairwosConfig::fast(Backbone::Gcn) }
}

#[test]
fn fairwos_beats_vanilla_on_fairness_without_losing_utility() {
    // Averaged over several dataset realizations *and* training seeds: on a
    // single realization a weak vanilla model can be accidentally fair
    // (its errors mask the base-rate gap), which is noise, not fairness.
    let seeds = [10u64, 11];
    let (mut v_acc, mut v_sp, mut v_eo) = (0.0, 0.0, 0.0);
    let (mut f_acc, mut f_sp, mut f_eo) = (0.0, 0.0, 0.0);
    let mut n = 0.0;
    for ds_seed in [1u64, 2, 3] {
        let ds = FairGraphDataset::generate(&DatasetSpec::nba(), ds_seed);
        let (a, s, e) = mean_report(&Vanilla::new(Backbone::Gcn), &ds, &seeds);
        v_acc += a;
        v_sp += s;
        v_eo += e;
        let trainer = FairwosTrainer::new(fairwos_config());
        let (a, s, e) = mean_report(&trainer, &ds, &seeds);
        f_acc += a;
        f_sp += s;
        f_eo += e;
        n += 1.0;
    }
    let (v_acc, v_sp, v_eo) = (v_acc / n, v_sp / n, v_eo / n);
    let (f_acc, f_sp, f_eo) = (f_acc / n, f_sp / n, f_eo / n);

    // Table II shape: combined bias improves…
    assert!(
        f_sp + f_eo < v_sp + v_eo,
        "Fairwos ΔSP+ΔEO {:.3} not below vanilla {:.3}",
        f_sp + f_eo,
        v_sp + v_eo
    );
    // …without a significant utility drop (the paper even reports gains).
    assert!(
        f_acc > v_acc - 0.03,
        "Fairwos ACC {f_acc:.3} dropped too far below vanilla {v_acc:.3}"
    );
}

#[test]
fn fairness_stage_reduces_bias_relative_to_its_own_backbone() {
    // Fig. 4 shape, encoder variant pair: full Fairwos is fairer than the
    // identical pipeline with the fairness stage disabled (Fwos w/o F).
    let ds = dataset();
    let seeds = [20, 21, 22];
    let wof = FairwosTrainer::new(FairwosConfig { use_fairness: false, ..fairwos_config() });
    let full = FairwosTrainer::new(fairwos_config());
    let (_, sp_wof, eo_wof) = mean_report(&wof, &ds, &seeds);
    let (_, sp_full, eo_full) = mean_report(&full, &ds, &seeds);
    assert!(
        sp_full + eo_full < sp_wof + eo_wof,
        "fairness stage did not reduce bias: ΔSP+ΔEO {:.3} vs {:.3}",
        sp_full + eo_full,
        sp_wof + eo_wof
    );
}

#[test]
fn all_table2_methods_produce_valid_predictions() {
    let ds = FairGraphDataset::generate(&DatasetSpec::bail().scaled(0.01), 5);
    let proxies: Vec<usize> = (0..ds.spec.corr_features).collect();
    let methods: Vec<Box<dyn FairMethod>> = vec![
        Box::new(Vanilla::new(Backbone::Gcn)),
        Box::new(RemoveR::new(Backbone::Gcn, proxies.clone())),
        Box::new(KSmote::new(Backbone::Gcn)),
        Box::new(FairRF::new(Backbone::Gcn, proxies)),
        Box::new(FairGkd::new(Backbone::Gcn)),
        Box::new(FairwosTrainer::new(fairwos_config())),
    ];
    for m in &methods {
        let probs = m.fit_predict(&input(&ds), 0);
        assert_eq!(probs.len(), ds.num_nodes(), "{}", m.name());
        assert!(
            probs.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "{} produced invalid probabilities",
            m.name()
        );
    }
}

#[test]
fn both_backbones_complete_the_full_pipeline() {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.5), 6);
    for backbone in [Backbone::Gcn, Backbone::Gin] {
        let cfg = FairwosConfig {
            alpha: 2.0,
            finetune_epochs: 10,
            encoder_epochs: 60,
            classifier_epochs: 80,
            ..FairwosConfig::fast(backbone)
        };
        let trained = FairwosTrainer::new(cfg).fit(&input(&ds), 1).expect("training converges");
        let probs = trained.predict_probs();
        assert!(probs.iter().all(|p| p.is_finite()), "{backbone} produced NaN");
        assert!(!trained.embeddings().has_non_finite(), "{backbone} embeddings NaN");
    }
}

#[test]
fn pseudo_sensitive_attributes_proxy_the_hidden_attribute() {
    // Fig. 7 shape: the encoder output separates the true sensitive groups
    // (positive silhouette), even though it never saw them.
    let ds = dataset();
    let trained = FairwosTrainer::new(fairwos_config()).fit(&input(&ds), 30).expect("training converges");
    let x0 = trained.pseudo_sensitive_attributes().select_rows(&ds.split.test);
    let labels: Vec<usize> = ds.sensitive_of(&ds.split.test).iter().map(|&s| s as usize).collect();
    let sil = fairwos::analysis::silhouette_score(&x0, &labels);
    assert!(
        sil > 0.0,
        "pseudo-sensitive attributes do not separate the sensitive groups (silhouette {sil:.3})"
    );
}
