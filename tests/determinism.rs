//! Determinism regression tests for the full Fairwos pipeline.
//!
//! Two contracts, both of which reproducibility studies of fair-GNN
//! pipelines identify as the main obstacle to verifying fairness claims:
//!
//! 1. **Same seed ⇒ bit-identical results.** Two `fit` calls with the same
//!    seed must produce byte-for-byte equal predictions and `EvalReport`s.
//! 2. **Thread-count independence.** The parallel kernels (rayon matmul /
//!    matmul_tn / spmm, the counterfactual search) must not let the worker
//!    count change float summation order: a 1-thread pool and the default
//!    pool must agree within 1e-6 on every metric. `matmul_tn` once derived
//!    its reduction chunk size from `rayon::current_num_threads()`, which
//!    is exactly the class of bug this test pins down.
//!
//! The dataset is sized so the kernels cross their parallel thresholds
//! (`PAR_THRESHOLD` in fairwos-tensor) — a tiny graph would silently test
//! only the sequential paths.

use fairwos::prelude::*;

fn dataset() -> FairGraphDataset {
    // 241 nodes × 39 features: encoder-stage matmuls are ~75k multiply-adds,
    // past the 64k parallel threshold, so the rayon paths genuinely run.
    FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.6), 5)
}

fn config() -> FairwosConfig {
    FairwosConfig {
        encoder_epochs: 60,
        classifier_epochs: 80,
        finetune_epochs: 8,
        learning_rate: 0.01,
        patience: 30,
        encoder_dim: 8,
        ..FairwosConfig::paper_default(Backbone::Gcn)
    }
}

/// Trains on `ds` with `seed` and returns the per-node probabilities plus
/// the test-split evaluation.
fn run_pipeline(ds: &FairGraphDataset, seed: u64) -> (Vec<f32>, EvalReport) {
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let trained = FairwosTrainer::new(config())
        .fit(&input, seed)
        .expect("training converges");
    let probs = trained.predict_probs();
    let test_probs: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
    let report = EvalReport::compute(
        &test_probs,
        &ds.labels_of(&ds.split.test),
        &ds.sensitive_of(&ds.split.test),
    );
    (probs, report)
}

/// `EvalReport` has no `PartialEq`; its serde JSON is a faithful bit-level
/// witness for the f64 fields, so string equality is bit equality.
fn report_bits(report: &EvalReport) -> String {
    serde_json::to_string(report).expect("EvalReport serializes")
}

#[test]
fn same_seed_is_bit_identical() {
    let ds = dataset();
    let (probs_a, report_a) = run_pipeline(&ds, 42);
    let (probs_b, report_b) = run_pipeline(&ds, 42);
    assert_eq!(probs_a, probs_b, "same-seed runs diverged in predictions");
    assert_eq!(
        report_bits(&report_a),
        report_bits(&report_b),
        "same-seed runs diverged in the evaluation report"
    );
}

#[test]
fn buffer_reuse_matches_allocating_path() {
    // `fit` draws every hot-path buffer from a pooling `TrainerWorkspace`;
    // `fit_with(…, TrainerWorkspace::disposable())` allocates fresh buffers
    // for every request. The two must be byte-for-byte the same model —
    // recycled buffers are zeroed on `take`, so the kernels cannot observe
    // stale contents. (Thread-count independence of the pooled path is
    // covered by `thread_count_does_not_change_results`, whose `run_pipeline`
    // uses the pooled `fit`.)
    let ds = dataset();
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let trainer = FairwosTrainer::new(config());
    let pooled = trainer.fit(&input, 42).expect("training converges");
    let mut tws = TrainerWorkspace::disposable();
    let allocating = trainer
        .fit_with(&input, 42, &mut tws)
        .expect("training converges");

    let probs_pooled = pooled.predict_probs();
    let probs_alloc = allocating.predict_probs();
    assert_eq!(
        probs_pooled, probs_alloc,
        "pooled and allocating fits diverged"
    );

    let eval = |probs: &[f32]| {
        let test_probs: Vec<f32> = ds.split.test.iter().map(|&v| probs[v]).collect();
        EvalReport::compute(
            &test_probs,
            &ds.labels_of(&ds.split.test),
            &ds.sensitive_of(&ds.split.test),
        )
    };
    assert_eq!(
        report_bits(&eval(&probs_pooled)),
        report_bits(&eval(&probs_alloc)),
        "pooled and allocating fits diverged in the evaluation report"
    );
    assert_eq!(
        pooled.lambda(),
        allocating.lambda(),
        "λ diverged between buffer paths"
    );
}

#[test]
fn same_seed_minibatch_is_bit_identical() {
    // The mini-batch path adds three new sources of nondeterminism risk:
    // rayon-parallel batch preparation, the per-epoch salt/shuffle draws,
    // and per-batch counterfactual search. Same seed must still mean
    // byte-for-byte equal models — at *finite* fanout and with several
    // blocks per epoch, where all of that machinery genuinely runs.
    let ds = dataset();
    let minibatch = MinibatchConfig {
        shuffle: true,
        ..MinibatchConfig::new(64, vec![4])
    };
    let cfg = FairwosConfig {
        minibatch: Some(minibatch),
        ..config()
    };
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let a = FairwosTrainer::new(cfg.clone())
        .fit(&input, 42)
        .expect("training converges");
    let b = FairwosTrainer::new(cfg)
        .fit(&input, 42)
        .expect("training converges");
    assert_eq!(
        a.predict_probs(),
        b.predict_probs(),
        "same-seed mini-batch runs diverged in predictions"
    );
    assert_eq!(
        a.lambda(),
        b.lambda(),
        "same-seed mini-batch runs diverged in λ"
    );
    assert_eq!(
        serde_json::to_string(&a.history).expect("history serializes"),
        serde_json::to_string(&b.history).expect("history serializes"),
        "same-seed mini-batch runs diverged in training history"
    );
}

#[test]
fn different_seeds_actually_differ() {
    // Guards the test above against vacuous passes (e.g. a seed that is
    // silently ignored would make every run "deterministic").
    let ds = dataset();
    let (probs_a, _) = run_pipeline(&ds, 42);
    let (probs_b, _) = run_pipeline(&ds, 43);
    assert_ne!(probs_a, probs_b, "the seed is being ignored");
}

#[test]
fn thread_count_does_not_change_results() {
    let ds = dataset();

    // Default pool (however many workers the machine/RAYON_NUM_THREADS
    // gives us) vs. an explicit 1-worker pool. `install` reroutes every
    // rayon call inside `fit` onto the chosen pool, which covers both the
    // RAYON_NUM_THREADS=1 and default configurations of the CI matrix in
    // one process.
    let (probs_default, report_default) = run_pipeline(&ds, 42);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool builds");
    let (probs_single, report_single) = pool.install(|| run_pipeline(&ds, 42));

    // The kernels use fixed chunk sizes, so summation order — and thus the
    // trained model — should not depend on the pool at all. The hard
    // contract is 1e-6 agreement; report the max divergence on failure.
    let max_diff = probs_default
        .iter()
        .zip(&probs_single)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_diff <= 1e-6,
        "predictions diverge across thread counts (max |Δp| = {max_diff:e}); \
         a parallel reduction is summing in a pool-dependent order"
    );

    for (name, d, s) in [
        ("accuracy", report_default.accuracy, report_single.accuracy),
        ("delta_sp", report_default.delta_sp, report_single.delta_sp),
        ("delta_eo", report_default.delta_eo, report_single.delta_eo),
        ("auc", report_default.auc, report_single.auc),
        ("f1", report_default.f1, report_single.f1),
    ] {
        assert!(
            (d - s).abs() <= 1e-6,
            "{name} diverges across thread counts: {d} vs {s}"
        );
    }
}
