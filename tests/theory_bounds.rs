//! Empirical checks of the paper's theoretical results (§IV).
//!
//! * **Theorem 2** — with a single pseudo-sensitive coordinate perturbed by
//!   one unit and neighbourhoods unchanged, the embedding gap after one GCN
//!   layer is bounded by the self-weight norm (and by the product of layer
//!   norms in the multi-layer form).
//! * **Theorem 3** — gradient descent on the composite objective with a
//!   small enough learning rate drives the loss down to a stationary point:
//!   the minimum gradient norm over T iterations shrinks as 1/T.

use fairwos::prelude::*;
use fairwos::nn::{GcnConv, GraphContext};
use fairwos::tensor::seeded_rng;
use fairwos_graph::GraphBuilder;

#[test]
fn theorem2_single_layer_bound_holds() {
    // Graph with a few nodes; perturb node 0's features by a unit vector.
    let g = GraphBuilder::new(5).edge(0, 1).edge(1, 2).edge(2, 3).edge(3, 4).build();
    let ctx = GraphContext::new(&g);
    let mut rng = seeded_rng(0);
    let conv = GcnConv::new(4, 8, &mut rng);
    let w_norm = conv.w.value.frobenius_norm();

    for trial in 0..20 {
        let x = Matrix::rand_uniform(5, 4, -1.0, 1.0, &mut seeded_rng(trial));
        let mut x_tilde = x.clone();
        // One-coordinate, unit-magnitude perturbation: ‖x̃⁰ − x⁰‖ = 1.
        let coord = (trial as usize) % 4;
        x_tilde.set(0, coord, x.get(0, coord) + 1.0);

        let z = conv.forward_inference(&ctx, &x);
        let z_tilde = conv.forward_inference(&ctx, &x_tilde);
        // Gap at the perturbed node only (the theorem's z_u).
        let gap: f32 = z
            .row(0)
            .iter()
            .zip(z_tilde.row(0))
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(
            gap <= w_norm * (1.0 + 1e-4),
            "trial {trial}: gap {gap} exceeds ‖W_a‖ = {w_norm}"
        );
    }
}

#[test]
fn theorem2_trained_model_reports_finite_bound() {
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.4), 1);
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let cfg = FairwosConfig {
        encoder_epochs: 40,
        classifier_epochs: 60,
        finetune_epochs: 5,
        learning_rate: 0.01,
        ..FairwosConfig::paper_default(Backbone::Gcn)
    };
    let trained = FairwosTrainer::new(cfg).fit(&input, 0).expect("training converges");
    let bound = trained.weight_product_norm();
    assert!(bound.is_finite() && bound > 0.0, "Π‖W_a‖ = {bound}");
}

#[test]
fn theorem3_descent_on_quadratic_matches_1_over_t_rate() {
    // L(θ) = ‖θ‖²: L-smooth with L = 2; lr < 2/L = 1 guarantees descent and
    // min_k ‖∇L(θ_k)‖² ≤ (L(θ⁰) − L*) / (M·T) with M = lr − L·lr²/2.
    let lr = 0.4f64;
    let l_smooth = 2.0f64;
    let m = lr - l_smooth * lr * lr / 2.0;
    assert!(m > 0.0);
    let theta0 = 5.0f64;
    let l0 = theta0 * theta0;

    let mut theta = theta0;
    let mut min_grad_sq = f64::INFINITY;
    let mut losses = Vec::new();
    for t in 1..=50usize {
        let grad = 2.0 * theta;
        min_grad_sq = min_grad_sq.min(grad * grad);
        theta -= lr * grad;
        losses.push(theta * theta);
        let bound = l0 / (m * t as f64);
        assert!(
            min_grad_sq <= bound + 1e-9,
            "iteration {t}: min‖∇‖² {min_grad_sq} exceeds bound {bound}"
        );
    }
    // Monotone descent (Eq. 40).
    for w in losses.windows(2) {
        assert!(w[1] <= w[0] + 1e-12);
    }
}

#[test]
fn theorem3_fairwos_classifier_loss_descends() {
    // The paper's convergence claim, smoke-checked on the real pipeline:
    // the pre-training loss trace is overwhelmingly decreasing and ends
    // far below where it starts.
    let ds = FairGraphDataset::generate(&DatasetSpec::nba().scaled(0.5), 2);
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let cfg = FairwosConfig {
        encoder_epochs: 80,
        classifier_epochs: 120,
        finetune_epochs: 5,
        learning_rate: 0.01,
        ..FairwosConfig::paper_default(Backbone::Gcn)
    };
    let trained = FairwosTrainer::new(cfg).fit(&input, 0).expect("training converges");
    let losses = &trained.history.classifier_losses;
    assert!(losses.last().unwrap() < &(losses[0] * 0.7), "{} -> {}", losses[0], losses.last().unwrap());
    let decreasing = losses.windows(2).filter(|w| w[1] <= w[0]).count();
    assert!(
        decreasing as f64 >= 0.8 * (losses.len() - 1) as f64,
        "only {decreasing}/{} steps decreased",
        losses.len() - 1
    );
}

#[test]
fn theorem1_mutual_information_chain_holds_empirically() {
    // The observable ends of Theorem 1's chain,
    // I(s; ŷ) ≤ Σᵢ I(xᵢ⁰; ·) — here instantiated with the discrete
    // variables we can estimate exactly: the thresholded prediction and the
    // median-binarized pseudo-sensitive attributes. If the prediction knew
    // more about s than all the pseudo-sensitive attributes combined, the
    // paper's bound (and its premise that X⁰ is the only leakage channel
    // into the classifier) would be violated.
    use fairwos::analysis::mutual_information;
    let ds = FairGraphDataset::generate(&DatasetSpec::nba(), 9);
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let cfg = FairwosConfig { alpha: 2.0, finetune_epochs: 40, ..FairwosConfig::fast(Backbone::Gcn) };
    let trained = FairwosTrainer::new(cfg).fit(&input, 0).expect("training converges");
    let probs = trained.predict_probs();

    let s: Vec<usize> = ds.sensitive_of(&ds.split.test).iter().map(|&b| b as usize).collect();
    let yhat: Vec<usize> = ds.split.test.iter().map(|&v| (probs[v] >= 0.5) as usize).collect();
    let i_s_yhat = mutual_information(&s, &yhat);

    let x0 = trained.pseudo_sensitive_attributes();
    let medians = x0.col_medians();
    let mut sum_i = 0.0;
    for (dim, &median) in medians.iter().enumerate() {
        let bits: Vec<usize> = ds
            .split
            .test
            .iter()
            .map(|&v| (x0.get(v, dim) > median) as usize)
            .collect();
        sum_i += mutual_information(&s, &bits);
    }
    assert!(
        i_s_yhat <= sum_i + 0.02,
        "I(s; ŷ) = {i_s_yhat:.4} exceeds Σᵢ I(s; xᵢ⁰) = {sum_i:.4}"
    );
}

#[test]
fn theorem1_fairness_regularizer_reduces_group_information() {
    // Theorem 1's operational content: shrinking I(x⁰ᵢ; z) shrinks I(s; ŷ).
    // Proxy check: after fine-tuning, the embeddings' sensitive-group
    // separation (silhouette) is lower than without fine-tuning.
    let ds = FairGraphDataset::generate(&DatasetSpec::nba(), 4);
    let input = TrainInput {
        graph: &ds.graph,
        features: &ds.features,
        labels: &ds.labels,
        train: &ds.split.train,
        val: &ds.split.val,
    };
    let base = FairwosConfig { alpha: 2.0, finetune_epochs: 40, ..FairwosConfig::fast(Backbone::Gcn) };
    let labels: Vec<usize> = ds.sensitive.iter().map(|&s| s as usize).collect();

    let mut sil_wof = 0.0;
    let mut sil_full = 0.0;
    for seed in [40, 41, 42] {
        let wof = FairwosTrainer::new(FairwosConfig { use_fairness: false, ..base.clone() })
            .fit(&input, seed).expect("training converges");
        let full = FairwosTrainer::new(base.clone()).fit(&input, seed).expect("training converges");
        sil_wof += fairwos::analysis::silhouette_score(&wof.embeddings(), &labels);
        sil_full += fairwos::analysis::silhouette_score(&full.embeddings(), &labels);
    }
    assert!(
        sil_full < sil_wof,
        "fairness stage did not reduce sensitive separation: {sil_full:.3} vs {sil_wof:.3}"
    );
}
